package valuation

// Tests for the concurrent coalition-valuation engine: mask guarding,
// singleflight dedup, batch evaluation, and the determinism contract —
// every scheme's output is bit-identical to the sequential path regardless
// of worker count. Synthetic oracles (no FedAvg cost) exercise the
// machinery; one integration test pins the contract on real training.

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fl"
	"repro/internal/telemetry"
)

// syntheticUtility is a deterministic, mask-pure utility cheap enough to
// evaluate thousands of coalitions. Safe for concurrent use.
func syntheticUtility(mask uint64) (float64, error) {
	h := mask * 0x9E3779B97F4A7C15
	return float64(h%1000) / 1000, nil
}

func TestNewOracleRejectsOversizedFederation(t *testing.T) {
	parts := make([]*fl.Participant, MaxParticipants+1)
	for i := range parts {
		parts[i] = &fl.Participant{ID: i}
	}
	if _, err := NewOracle(nil, parts, nil); err == nil {
		t.Fatal("NewOracle accepted 65 participants; masks would alias")
	}
}

func TestOracleRejectsAliasingMask(t *testing.T) {
	o := newSyntheticOracle(8, syntheticUtility)
	if _, err := o.Utility(1 << 8); err == nil {
		t.Fatal("Utility accepted a mask bit outside the federation")
	}
	if _, err := o.Utility(1 << 63); err == nil {
		t.Fatal("Utility accepted bit 63 in an 8-participant federation")
	}
	if _, err := o.Utility(0b1011); err != nil {
		t.Fatalf("valid mask rejected: %v", err)
	}
}

func TestFullMask64(t *testing.T) {
	if got := fullMask(64); got != ^uint64(0) {
		t.Fatalf("fullMask(64) = %#x", got)
	}
	if got := fullMask(3); got != 0b111 {
		t.Fatalf("fullMask(3) = %#x", got)
	}
}

func TestOracleSingleflightDedup(t *testing.T) {
	var trainings atomic.Int64
	o := newSyntheticOracle(8, func(mask uint64) (float64, error) {
		trainings.Add(1)
		time.Sleep(20 * time.Millisecond) // widen the in-flight window
		return syntheticUtility(mask)
	})
	o.Workers = 8

	const callers = 16
	var wg sync.WaitGroup
	vals := make([]float64, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			u, err := o.Utility(0b1010)
			if err != nil {
				t.Error(err)
				return
			}
			vals[i] = u
		}(i)
	}
	wg.Wait()
	if n := trainings.Load(); n != 1 {
		t.Fatalf("trainings = %d, want 1 (singleflight dedup)", n)
	}
	if o.Evals() != 1 {
		t.Fatalf("Evals = %d, want 1", o.Evals())
	}
	if o.CacheHits() != callers-1 {
		t.Fatalf("CacheHits = %d, want %d", o.CacheHits(), callers-1)
	}
	for i := 1; i < callers; i++ {
		if vals[i] != vals[0] {
			t.Fatalf("caller %d saw %v, caller 0 saw %v", i, vals[i], vals[0])
		}
	}
}

func TestEvalBatchDedupAndErrors(t *testing.T) {
	var trainings atomic.Int64
	boom := errors.New("boom")
	o := newSyntheticOracle(8, func(mask uint64) (float64, error) {
		trainings.Add(1)
		if mask == 0b11 {
			return 0, boom
		}
		return syntheticUtility(mask)
	})
	o.Workers = 4

	plan := []uint64{0b1, 0b10, 0b1, 0b10, 0b100, 0, 0b100}
	if err := o.EvalBatch(plan); err != nil {
		t.Fatal(err)
	}
	if n := trainings.Load(); n != 3 {
		t.Fatalf("trainings = %d, want 3 (dedup within batch; empty mask free)", n)
	}
	// Re-submitting the same plan is free.
	if err := o.EvalBatch(plan); err != nil {
		t.Fatal(err)
	}
	if n := trainings.Load(); n != 3 {
		t.Fatalf("trainings after warm resubmit = %d, want 3", n)
	}
	if err := o.EvalBatch([]uint64{0b1000, 0b11}); !errors.Is(err, boom) {
		t.Fatalf("EvalBatch error = %v, want boom", err)
	}
	// Failed masks are not cached as done: a retry re-trains them.
	if err := o.EvalBatch([]uint64{0b11}); !errors.Is(err, boom) {
		t.Fatalf("retry error = %v, want boom", err)
	}
}

func TestPlanHelpers(t *testing.T) {
	if got := PlanIndividual(3); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("PlanIndividual(3) = %v", got)
	}
	loo := PlanLeaveOneOut(3)
	want := []uint64{0b111, 0b110, 0b101, 0b011}
	if len(loo) != len(want) {
		t.Fatalf("PlanLeaveOneOut(3) = %v", loo)
	}
	for i := range want {
		if loo[i] != want[i] {
			t.Fatalf("PlanLeaveOneOut(3)[%d] = %#x, want %#x", i, loo[i], want[i])
		}
	}
	perms := [][]int{{2, 0, 1}, {1, 2, 0}}
	pp := PlanPermutationPrefixes(3, perms, 1)
	wantPP := []uint64{0, 0b111, 0b100, 0b010}
	if len(pp) != len(wantPP) {
		t.Fatalf("PlanPermutationPrefixes = %v", pp)
	}
	for i := range wantPP {
		if pp[i] != wantPP[i] {
			t.Fatalf("PlanPermutationPrefixes[%d] = %#x, want %#x", i, pp[i], wantPP[i])
		}
	}
}

// legacySampledShapley is the pre-engine sequential implementation, kept
// verbatim as the reference the parallel walker must match bit-for-bit.
func legacySampledShapley(n int, v Utility, perms int, eps float64, r *rand.Rand) ([]float64, error) {
	full := fullMask(n)
	vFull, err := v(full)
	if err != nil {
		return nil, err
	}
	vEmpty, err := v(0)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for p := 0; p < perms; p++ {
		order := r.Perm(n)
		mask := uint64(0)
		prev := vEmpty
		truncated := false
		for _, i := range order {
			if truncated {
				continue
			}
			mask |= 1 << uint(i)
			cur, err := v(mask)
			if err != nil {
				return nil, err
			}
			out[i] += cur - prev
			prev = cur
			if eps > 0 && absf(vFull-cur) < eps {
				truncated = true
			}
		}
	}
	for i := range out {
		out[i] /= float64(perms)
	}
	return out, nil
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestSampledShapleyMatchesLegacySequential(t *testing.T) {
	const n, perms = 10, 24
	for _, eps := range []float64{0, 0.05, 0.5} {
		ref, err := legacySampledShapley(n, syntheticUtility, perms, eps, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4, 8} {
			o := newSyntheticOracle(n, syntheticUtility)
			o.Workers = workers
			got, err := SampledShapley(n, o.Utility, ShapleyConfig{
				Permutations:  perms,
				TruncationEps: eps,
				Rand:          rand.New(rand.NewSource(42)),
				Workers:       workers,
				Warm:          o.EvalBatch,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("eps=%v workers=%d: phi[%d] = %v, legacy %v (must be bit-identical)",
						eps, workers, i, got[i], ref[i])
				}
			}
		}
	}
}

func TestSampledLeastCoreWarmMatchesUnwarmed(t *testing.T) {
	const n = 8
	ref, err := SampledLeastCore(n, syntheticUtility, LeastCoreConfig{
		Samples: 40, Rand: rand.New(rand.NewSource(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		o := newSyntheticOracle(n, syntheticUtility)
		o.Workers = workers
		got, err := SampledLeastCore(n, o.Utility, LeastCoreConfig{
			Samples: 40, Rand: rand.New(rand.NewSource(7)), Warm: o.EvalBatch,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: phi[%d] = %v, sequential %v (must be bit-identical)",
					workers, i, got[i], ref[i])
			}
		}
	}
}

// TestSchemesWorkerInvariance pins the determinism contract end-to-end on
// real FedAvg training: every baseline's Scores are bit-identical across
// worker counts 1, 4 and 8, and the engine performed the same number of
// coalition trainings each time. Run under -race this also exercises
// concurrent batches against the shared trainer.
func TestSchemesWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	trainer, parts, test := tinyFederation(t)
	build := func(workers int) []Scheme {
		return []Scheme{
			&Individual{Trainer: trainer, Workers: workers},
			&LeaveOneOut{Trainer: trainer, Workers: workers},
			&ShapleyValue{Trainer: trainer, Permutations: 4, Seed: 1, Workers: workers},
			&LeastCore{Trainer: trainer, Samples: 8, Seed: 1, Workers: workers},
		}
	}
	ref := make(map[string][]float64)
	for _, s := range build(1) {
		scores, err := s.Scores(parts, test)
		if err != nil {
			t.Fatalf("%s sequential: %v", s.Name(), err)
		}
		ref[s.Name()] = scores
	}
	for _, workers := range []int{4, 8} {
		for _, s := range build(workers) {
			scores, err := s.Scores(parts, test)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", s.Name(), workers, err)
			}
			for i := range scores {
				if scores[i] != ref[s.Name()][i] {
					t.Fatalf("%s workers=%d: phi[%d] = %v, sequential %v (must be bit-identical)",
						s.Name(), workers, i, scores[i], ref[s.Name()][i])
				}
			}
		}
	}
}

// TestSharedOracleConcurrentSchemes drives all four baselines concurrently
// against one shared oracle (the experiments' cell-parallel pattern) and
// checks both the scores and that the dedup collapsed the overlapping
// coalition work. Under -race this is the engine's main concurrency test.
func TestSharedOracleConcurrentSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	trainer, parts, test := tinyFederation(t)
	ref := make(map[string][]float64)
	for _, s := range []Scheme{
		&Individual{Trainer: trainer, Workers: 1},
		&LeaveOneOut{Trainer: trainer, Workers: 1},
		&ShapleyValue{Trainer: trainer, Permutations: 4, Seed: 1, Workers: 1},
		&LeastCore{Trainer: trainer, Samples: 8, Seed: 1, Workers: 1},
	} {
		scores, err := s.Scores(parts, test)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		ref[s.Name()] = scores
	}

	shared, err := NewOracle(trainer, parts, test)
	if err != nil {
		t.Fatal(err)
	}
	shared.Workers = 4
	schemes := []Scheme{
		&Individual{Trainer: trainer, SharedOracle: shared},
		&LeaveOneOut{Trainer: trainer, SharedOracle: shared},
		&ShapleyValue{Trainer: trainer, Permutations: 4, Seed: 1, Workers: 4, SharedOracle: shared},
		&LeastCore{Trainer: trainer, Samples: 8, Seed: 1, SharedOracle: shared},
	}
	got := make([][]float64, len(schemes))
	var wg sync.WaitGroup
	errs := make([]error, len(schemes))
	for i, s := range schemes {
		wg.Add(1)
		go func(i int, s Scheme) {
			defer wg.Done()
			got[i], errs[i] = s.Scores(parts, test)
		}(i, s)
	}
	wg.Wait()
	for i, s := range schemes {
		if errs[i] != nil {
			t.Fatalf("%s: %v", s.Name(), errs[i])
		}
		for j := range got[i] {
			if got[i][j] != ref[s.Name()][j] {
				t.Fatalf("%s concurrent shared: phi[%d] = %v, sequential %v",
					s.Name(), j, got[i][j], ref[s.Name()][j])
			}
		}
	}
	// The four schemes overlap heavily on a 3-participant game (singletons,
	// leave-one-outs, the grand coalition); the shared cache must have
	// served a substantial portion without retraining.
	if shared.CacheHits() == 0 {
		t.Fatal("shared oracle recorded no cache hits across schemes")
	}
	t.Logf("shared oracle: %d trainings, %d served from cache/in-flight", shared.Evals(), shared.CacheHits())
}

// TestSyntheticWorkerInvarianceShort is the -short variant of the
// determinism contract: synthetic utilities, heavy fan-out, no training.
func TestSyntheticWorkerInvarianceShort(t *testing.T) {
	const n = 12
	ref, err := SampledShapley(n, syntheticUtility, ShapleyConfig{
		Permutations: 50, TruncationEps: 0.02, Rand: rand.New(rand.NewSource(3)),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		o := newSyntheticOracle(n, syntheticUtility)
		o.Workers = workers
		got, err := SampledShapley(n, o.Utility, ShapleyConfig{
			Permutations: 50, TruncationEps: 0.02, Rand: rand.New(rand.NewSource(3)),
			Workers: workers, Warm: o.EvalBatch,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: phi[%d] differs from sequential", workers, i)
			}
		}
	}
}

func TestObsWiring(t *testing.T) {
	o := newSyntheticOracle(6, syntheticUtility)
	obs := NewObs(telemetry.NewRegistry())
	o.Obs = obs
	if err := o.EvalBatch(PlanLeaveOneOut(6)); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Utility(fullMask(6)); err != nil {
		t.Fatal(err)
	}
	if got := obs.Evals.Value(); got != 7 {
		t.Fatalf("obs evals = %d, want 7", got)
	}
	if got := obs.CacheHits.Value(); got != 1 {
		t.Fatalf("obs cache hits = %d, want 1", got)
	}
}

func TestOracleUtilityErrorMessageNamesLimit(t *testing.T) {
	parts := make([]*fl.Participant, MaxParticipants+3)
	for i := range parts {
		parts[i] = &fl.Participant{ID: i}
	}
	_, err := NewOracle(nil, parts, nil)
	if err == nil {
		t.Fatal("expected error")
	}
	if want := fmt.Sprintf("%d", MaxParticipants); !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name the %s-participant limit", err, want)
	}
}
