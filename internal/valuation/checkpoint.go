package valuation

// Checkpoint/resume for the coalition-valuation oracle. Every coalition
// utility is one FedAvg retraining — minutes of work on real federations —
// so a killed Shapley or least-core run used to forfeit everything it had
// computed. A Checkpoint persists each (mask, utility) pair through the
// same WAL+snapshot store that backs the server, and AttachCheckpoint seeds
// a fresh oracle's cache from it: the resumed run replays restored masks as
// cache hits and retrains only what is missing. Utilities are deterministic
// functions of the mask, so a resumed run's scores are bit-identical to an
// uninterrupted one.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"repro/internal/faults"
	"repro/internal/store"
)

// eventUtility is the checkpoint store's only event type: one memoized
// coalition utility. The payload is 16 bytes: the coalition mask then the
// IEEE-754 bits of its utility, both little-endian. Float64bits (not a
// decimal rendering) keeps the resume bit-identical.
const eventUtility byte = 16

const utilityPayloadLen = 8 + 8

// CheckpointOptions configures OpenCheckpoint.
type CheckpointOptions struct {
	// Sync fsyncs after every recorded utility. Each record costs a full
	// coalition training anyway, so the default true is cheap insurance.
	Sync bool
	// NoSync disables the fsync-per-record default (tests, benchmarks).
	NoSync bool
	// Logf receives recovery and write-failure diagnostics. Defaults to the
	// store's default logger.
	Logf func(format string, args ...any)
	// Obs receives the underlying store's telemetry; nil disables it.
	Obs *store.Obs
	// Faults injects failures at the store's sites, for resilience testing.
	Faults *faults.Injector
}

// Checkpoint is a durable memo of coalition utilities, attachable to an
// Oracle. Safe for concurrent use.
type Checkpoint struct {
	st   *store.Store
	logf func(format string, args ...any)

	mu      sync.Mutex
	entries map[uint64]float64
}

// OpenCheckpoint opens (or creates) a checkpoint directory and replays its
// recorded utilities. Unknown event types and short payloads are skipped
// with a diagnostic — a checkpoint is a cache, so losing records means
// recomputation, never wrong results. A torn tail record was already
// truncated by the store's replay.
func OpenCheckpoint(dir string, opts CheckpointOptions) (*Checkpoint, error) {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	st, events, err := store.Open(dir, store.Options{
		Sync:   !opts.NoSync,
		Logf:   opts.Logf,
		Obs:    opts.Obs,
		Faults: opts.Faults,
	})
	if err != nil {
		return nil, fmt.Errorf("valuation: checkpoint: %w", err)
	}
	cp := &Checkpoint{st: st, entries: make(map[uint64]float64, len(events)), logf: logf}
	for _, ev := range events {
		if ev.Type != eventUtility || len(ev.Payload) != utilityPayloadLen {
			cp.logf("valuation: checkpoint: skipping foreign record (type %d, %d bytes)", ev.Type, len(ev.Payload))
			continue
		}
		mask := binary.LittleEndian.Uint64(ev.Payload)
		u := math.Float64frombits(binary.LittleEndian.Uint64(ev.Payload[8:]))
		cp.entries[mask] = u
	}
	return cp, nil
}

// Len reports the number of restored + recorded utilities.
func (cp *Checkpoint) Len() int {
	if cp == nil {
		return 0
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return len(cp.entries)
}

// record appends one utility to the WAL. The write is the durability of a
// whole coalition training; a failure is logged, not returned — the
// checkpoint is an optimization, and the in-memory cache still holds the
// value for this process's lifetime.
func (cp *Checkpoint) record(mask uint64, u float64) bool {
	cp.mu.Lock()
	cp.entries[mask] = u
	cp.mu.Unlock()
	payload := make([]byte, utilityPayloadLen)
	binary.LittleEndian.PutUint64(payload, mask)
	binary.LittleEndian.PutUint64(payload[8:], math.Float64bits(u))
	if err := cp.st.Append(store.Event{Type: eventUtility, Payload: payload}); err != nil {
		cp.logf("valuation: checkpoint: recording coalition %#x failed: %v", mask, err)
		return false
	}
	return true
}

// Compact folds the WAL into a snapshot with one record per distinct mask
// (re-evaluations never happen, but a fault-retried append may have
// duplicated a record; the map form drops duplicates).
func (cp *Checkpoint) Compact() error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	events := make([]store.Event, 0, len(cp.entries))
	for mask, u := range cp.entries {
		payload := make([]byte, utilityPayloadLen)
		binary.LittleEndian.PutUint64(payload, mask)
		binary.LittleEndian.PutUint64(payload[8:], math.Float64bits(u))
		events = append(events, store.Event{Type: eventUtility, Payload: payload})
	}
	return cp.st.Compact(events)
}

// Close releases the underlying store. Recorded utilities stay on disk for
// the next OpenCheckpoint.
func (cp *Checkpoint) Close() error { return cp.st.Close() }

// AttachCheckpoint seeds the oracle's cache with the checkpoint's restored
// utilities and routes every future cache fill into it. It returns the
// number of utilities restored (masks outside the federation are skipped —
// a checkpoint from a differently-sized run must not alias coalitions).
// Attach before the first Utility/EvalBatch call; the oracle does not lock
// against concurrent attachment.
func (o *Oracle) AttachCheckpoint(cp *Checkpoint) int {
	o.ckpt = cp
	if cp == nil {
		return 0
	}
	restored := 0
	cp.mu.Lock()
	defer cp.mu.Unlock()
	for mask, u := range cp.entries {
		if mask == 0 || o.checkMask(mask) != nil {
			o.obs().CheckpointSkipped.Inc()
			continue
		}
		sh := o.shard(mask)
		sh.mu.Lock()
		if _, ok := sh.done[mask]; !ok {
			sh.done[mask] = u
			restored++
		}
		sh.mu.Unlock()
	}
	o.obs().CheckpointRestored.Add(int64(restored))
	return restored
}
