package valuation

import (
	"errors"
	"math"
	"testing"

	"repro/internal/stats"
)

var errBoom = errors.New("boom")

func TestAntitheticShapleyConverges(t *testing.T) {
	exact, err := ExactShapley(3, tableII)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AntitheticShapley(3, tableII, 1500, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if math.Abs(got[i]-exact[i]) > 0.01 {
			t.Fatalf("antithetic %v vs exact %v", got, exact)
		}
	}
}

func TestStratifiedShapleyConverges(t *testing.T) {
	exact, err := ExactShapley(3, tableII)
	if err != nil {
		t.Fatal(err)
	}
	got, err := StratifiedShapley(3, tableII, 500, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if math.Abs(got[i]-exact[i]) > 0.01 {
			t.Fatalf("stratified %v vs exact %v", got, exact)
		}
	}
}

func TestVarianceReductionOnAdditiveGame(t *testing.T) {
	// On an additive game every estimator is exact per permutation, so all
	// must return the worths with near-zero error even at tiny budgets.
	worth := []float64{0.3, 0.1, 0.6}
	v := func(mask uint64) (float64, error) {
		s := 0.0
		for i, w := range worth {
			if mask&(1<<uint(i)) != 0 {
				s += w
			}
		}
		return s, nil
	}
	anti, err := AntitheticShapley(3, v, 2, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	strat, err := StratifiedShapley(3, v, 1, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range worth {
		if math.Abs(anti[i]-worth[i]) > 1e-9 || math.Abs(strat[i]-worth[i]) > 1e-9 {
			t.Fatalf("additive game not exact: anti %v strat %v", anti, strat)
		}
	}
}

func TestAntitheticBeatsPlainAtEqualBudget(t *testing.T) {
	// Average squared error across seeds at the same coalition-evaluation
	// budget: antithetic pairs should not be worse than plain sampling.
	exact, _ := ExactShapley(3, tableII)
	mse := func(est func(seed int64) []float64) float64 {
		total := 0.0
		const seeds = 40
		for s := int64(0); s < seeds; s++ {
			got := est(s)
			for i := range exact {
				d := got[i] - exact[i]
				total += d * d
			}
		}
		return total / seeds
	}
	plainMSE := mse(func(seed int64) []float64 {
		got, err := SampledShapley(3, tableII, ShapleyConfig{Permutations: 8, Rand: stats.NewRNG(seed)})
		if err != nil {
			t.Fatal(err)
		}
		return got
	})
	antiMSE := mse(func(seed int64) []float64 {
		got, err := AntitheticShapley(3, tableII, 4, stats.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		return got
	})
	if antiMSE > plainMSE*1.5 {
		t.Fatalf("antithetic variance regressed: %v vs plain %v", antiMSE, plainMSE)
	}
	t.Logf("MSE plain=%.6f antithetic=%.6f", plainMSE, antiMSE)
}

func TestSamplingValidation(t *testing.T) {
	if _, err := AntitheticShapley(3, tableII, 1, nil); err == nil {
		t.Fatal("nil rand should error")
	}
	if _, err := StratifiedShapley(3, tableII, 1, nil); err == nil {
		t.Fatal("nil rand should error")
	}
}

func TestSamplingErrorPropagation(t *testing.T) {
	boom := func(mask uint64) (float64, error) {
		if mask != 0 {
			return 0, errBoom
		}
		return 0, nil
	}
	if _, err := AntitheticShapley(3, boom, 1, stats.NewRNG(1)); err == nil {
		t.Fatal("antithetic should propagate errors")
	}
	if _, err := StratifiedShapley(3, boom, 1, stats.NewRNG(1)); err == nil {
		t.Fatal("stratified should propagate errors")
	}
}
