package valuation

import (
	"math"
	"math/bits"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/faults"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// synthUtility is a deterministic, mask-dependent utility with enough
// structure that a wrong or stale cached value shows up in the scores.
func synthUtility(mask uint64) (float64, error) {
	h := mask * 0x9E3779B97F4A7C15
	return float64(bits.OnesCount64(mask)) + float64(h>>40)/float64(1<<24), nil
}

// trackedOracle wraps synthUtility with a record of which masks actually
// trained.
type trackedOracle struct {
	*Oracle
	mu      sync.Mutex
	trained map[uint64]int
}

func newTrackedOracle(n int) *trackedOracle {
	tr := &trackedOracle{trained: make(map[uint64]int)}
	tr.Oracle = newSyntheticOracle(n, func(mask uint64) (float64, error) {
		tr.mu.Lock()
		tr.trained[mask]++
		tr.mu.Unlock()
		return synthUtility(mask)
	})
	return tr
}

func shapleyScores(t *testing.T, o *trackedOracle, n int) []float64 {
	t.Helper()
	scores, err := SampledShapley(n, o.Utility, ShapleyConfig{
		Permutations:  6,
		TruncationEps: 0.01,
		Rand:          rand.New(rand.NewSource(7)),
		Workers:       4,
		Warm:          o.EvalBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	return scores
}

// TestCheckpointResumeBitIdentical is the headline resilience property: a
// Shapley run killed partway resumes from its checkpoint with (a) scores
// bit-identical to an uninterrupted run and (b) zero retraining of any
// checkpointed coalition — proven by the trainFn call log and the restored /
// cache-hit telemetry.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	const n = 10
	dir := t.TempDir()

	// Uninterrupted reference run.
	ref := newTrackedOracle(n)
	want := shapleyScores(t, ref, n)

	// Run 1: checkpointing oracle, killed after the warm-up batch (a real
	// kill can land anywhere; the cut point only changes how much is saved).
	cp1, err := OpenCheckpoint(dir, CheckpointOptions{NoSync: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	first := newTrackedOracle(n)
	if got := first.AttachCheckpoint(cp1); got != 0 {
		t.Fatalf("fresh checkpoint restored %d entries, want 0", got)
	}
	if err := first.EvalBatch(PlanLeaveOneOut(n)); err != nil {
		t.Fatal(err)
	}
	saved := cp1.Len()
	if saved != first.Evals() {
		t.Fatalf("checkpoint holds %d entries, want every one of the %d evals", saved, first.Evals())
	}
	if err := cp1.Close(); err != nil { // the "kill"
		t.Fatal(err)
	}

	// Run 2: resume into a fresh process-worth of state.
	reg := telemetry.NewRegistry()
	cp2, err := OpenCheckpoint(dir, CheckpointOptions{NoSync: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Len() != saved {
		t.Fatalf("reopened checkpoint holds %d entries, want %d", cp2.Len(), saved)
	}
	restoredMasks := make(map[uint64]bool, cp2.Len())
	cp2.mu.Lock()
	for mask := range cp2.entries {
		restoredMasks[mask] = true
	}
	cp2.mu.Unlock()
	resumed := newTrackedOracle(n)
	resumed.Obs = NewObs(reg)
	restored := resumed.AttachCheckpoint(cp2)
	if restored != saved {
		t.Fatalf("restored %d utilities, want %d", restored, saved)
	}
	got := shapleyScores(t, resumed, n)

	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("score[%d] = %v after resume, want bit-identical %v", i, got[i], want[i])
		}
	}
	// No checkpointed coalition retrained — the trainFn call log is the
	// ground truth.
	for mask := range restoredMasks {
		if c := resumed.trained[mask]; c != 0 {
			t.Errorf("coalition %#x retrained %d times despite checkpoint", mask, c)
		}
	}
	// And the eval count shrank by exactly the restored masks the reference
	// run needed (the killed run may also have saved masks Shapley never
	// asks for).
	overlap := 0
	for mask := range restoredMasks {
		if ref.trained[mask] != 0 {
			overlap++
		}
	}
	if resumed.Evals() != ref.Evals()-overlap {
		t.Errorf("resumed run trained %d coalitions, want %d (reference %d − %d already checkpointed)",
			resumed.Evals(), ref.Evals()-overlap, ref.Evals(), overlap)
	}
	// Telemetry proves the same story to an operator.
	snap := reg.Snapshot()
	if v, _ := snap["ctfl_valuation_checkpoint_restored_total"].(int64); v != int64(restored) {
		t.Errorf("checkpoint_restored_total = %v, want %d", snap["ctfl_valuation_checkpoint_restored_total"], restored)
	}
	if v, _ := snap["ctfl_valuation_checkpoint_writes_total"].(int64); v != int64(resumed.Evals()) {
		t.Errorf("checkpoint_writes_total = %v, want %d (every new eval recorded)", v, resumed.Evals())
	}
}

// TestCheckpointRecordSurvivesInjectedAppendFaults: a failing checkpoint
// write must not fail the valuation — the run continues on the in-memory
// cache and the lost records are simply recomputed after a restart.
func TestCheckpointRecordSurvivesInjectedAppendFaults(t *testing.T) {
	const n = 6
	dir := t.TempDir()
	in := faults.New(11, map[string]faults.Site{
		store.FaultAppend: {ErrProb: 1, MaxFaults: 2},
	})
	cp, err := OpenCheckpoint(dir, CheckpointOptions{NoSync: true, Logf: t.Logf, Faults: in})
	if err != nil {
		t.Fatal(err)
	}
	o := newTrackedOracle(n)
	o.AttachCheckpoint(cp)
	if err := o.EvalBatch(PlanIndividual(n)); err != nil {
		t.Fatal(err)
	}
	// All n utilities are served despite the two dropped records...
	for i := 0; i < n; i++ {
		u, err := o.Utility(1 << uint(i))
		if err != nil {
			t.Fatal(err)
		}
		want, _ := synthUtility(1 << uint(i))
		if u != want {
			t.Fatalf("utility(%d) = %v, want %v", i, u, want)
		}
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	// ...and a reopened checkpoint holds exactly the n−2 that reached disk.
	cp2, err := OpenCheckpoint(dir, CheckpointOptions{NoSync: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Len() != n-2 {
		t.Fatalf("reopened checkpoint holds %d entries, want %d", cp2.Len(), n-2)
	}
	resumed := newTrackedOracle(n)
	if got := resumed.AttachCheckpoint(cp2); got != n-2 {
		t.Fatalf("restored %d, want %d", got, n-2)
	}
	if err := resumed.EvalBatch(PlanIndividual(n)); err != nil {
		t.Fatal(err)
	}
	if resumed.Evals() != 2 {
		t.Fatalf("resumed run trained %d coalitions, want exactly the 2 lost records", resumed.Evals())
	}
}

// TestCheckpointForeignMasksSkipped: a checkpoint from a larger federation
// must not alias coalitions in a smaller one.
func TestCheckpointForeignMasksSkipped(t *testing.T) {
	dir := t.TempDir()
	cp, err := OpenCheckpoint(dir, CheckpointOptions{NoSync: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	big := newTrackedOracle(8)
	big.AttachCheckpoint(cp)
	if err := big.EvalBatch(PlanLeaveOneOut(8)); err != nil { // masks touch bits 0..7
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	cp2, err := OpenCheckpoint(dir, CheckpointOptions{NoSync: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	reg := telemetry.NewRegistry()
	small := newTrackedOracle(4)
	small.Obs = NewObs(reg)
	restored := small.AttachCheckpoint(cp2)
	// Every leave-one-out mask of an 8-player game has a bit above player 3.
	if restored != 0 {
		t.Fatalf("restored %d foreign masks into a 4-player oracle", restored)
	}
	if v, _ := reg.Snapshot()["ctfl_valuation_checkpoint_skipped_total"].(int64); v != int64(cp2.Len()) {
		t.Errorf("checkpoint_skipped_total = %v, want %d", v, cp2.Len())
	}
	if err := small.EvalBatch(PlanIndividual(4)); err != nil {
		t.Fatal(err)
	}
	if small.Evals() != 4 {
		t.Fatalf("small oracle trained %d coalitions, want all 4", small.Evals())
	}
}

// TestCheckpointCompact: compaction folds the WAL into a snapshot without
// losing entries, and duplicate records collapse.
func TestCheckpointCompact(t *testing.T) {
	dir := t.TempDir()
	cp, err := OpenCheckpoint(dir, CheckpointOptions{NoSync: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	o := newTrackedOracle(5)
	o.AttachCheckpoint(cp)
	if err := o.EvalBatch(PlanLeaveOneOut(5)); err != nil {
		t.Fatal(err)
	}
	want := cp.Len()
	if err := cp.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	cp2, err := OpenCheckpoint(dir, CheckpointOptions{NoSync: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Len() != want {
		t.Fatalf("post-compact checkpoint holds %d entries, want %d", cp2.Len(), want)
	}
	resumed := newTrackedOracle(5)
	if got := resumed.AttachCheckpoint(cp2); got != want {
		t.Fatalf("restored %d after compaction, want %d", got, want)
	}
	if err := resumed.EvalBatch(PlanLeaveOneOut(5)); err != nil {
		t.Fatal(err)
	}
	if resumed.Evals() != 0 {
		t.Fatalf("resumed run retrained %d coalitions after compaction, want 0", resumed.Evals())
	}
}

// TestUtilityCacheHitZeroAlloc pins the resume-speed contract: serving a
// cached utility — the operation a resumed run performs thousands of times —
// allocates nothing, with or without a checkpoint attached (cache hits are
// never re-recorded).
func TestUtilityCacheHitZeroAlloc(t *testing.T) {
	o := newSyntheticOracle(8, synthUtility)
	const mask = uint64(0b1011)
	if _, err := o.Utility(mask); err != nil { // fill the cache
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := o.Utility(mask); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("cache-hit Utility allocates %v/op, want 0", n)
	}

	cp, err := OpenCheckpoint(t.TempDir(), CheckpointOptions{NoSync: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	o2 := newSyntheticOracle(8, synthUtility)
	o2.AttachCheckpoint(cp)
	if _, err := o2.Utility(mask); err != nil {
		t.Fatal(err)
	}
	writes := cp.Len()
	if n := testing.AllocsPerRun(200, func() {
		if _, err := o2.Utility(mask); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("cache-hit Utility with checkpoint allocates %v/op, want 0", n)
	}
	if cp.Len() != writes {
		t.Fatalf("cache hits appended %d checkpoint records", cp.Len()-writes)
	}
}
