package valuation

// Batch planning: each scheme can pre-enumerate the coalition masks it will
// touch and submit them to Oracle.EvalBatch as one deduplicated parallel
// batch, so the combinatorial part of the baselines becomes embarrassingly
// parallel while the scheme's own arithmetic stays sequential and
// deterministic against a warm cache.
//
// Plans are allowed to overlap (the oracle deduplicates) but must never be
// speculative where the scheme's semantics forbid it: truncated Monte-Carlo
// Shapley only plans the permutation prefixes that are guaranteed to be
// evaluated regardless of where truncation strikes (see
// PlanPermutationPrefixes).

// PlanIndividual lists the masks the Individual scheme needs: the n
// singleton coalitions.
func PlanIndividual(n int) []uint64 {
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, 1<<uint(i))
	}
	return out
}

// PlanLeaveOneOut lists the masks the LeaveOneOut scheme needs: the grand
// coalition plus the n leave-one-out coalitions.
func PlanLeaveOneOut(n int) []uint64 {
	full := fullMask(n)
	out := make([]uint64, 0, n+1)
	out = append(out, full)
	for i := 0; i < n; i++ {
		out = append(out, full&^(1<<uint(i)))
	}
	return out
}

// PlanPermutationPrefixes lists the prefix-coalition masks of the sampled
// permutations up to the given depth (number of leading elements), plus the
// empty and grand coalitions every permutation walk consults. Depth 1 is
// the largest non-speculative plan under truncation: the first marginal of
// a permutation is always evaluated, while whether prefix k+1 is evaluated
// depends on the utility of prefix k (GTG-Shapley truncation). Planning
// deeper would risk training coalitions a truncated walk never asks for.
func PlanPermutationPrefixes(n int, perms [][]int, depth int) []uint64 {
	out := []uint64{0, fullMask(n)}
	if depth <= 0 {
		return out
	}
	for _, order := range perms {
		mask := uint64(0)
		for k := 0; k < depth && k < len(order); k++ {
			mask |= 1 << uint(order[k])
			out = append(out, mask)
		}
	}
	return out
}
