package rounds

// Score-quality instruments.
//
// Sampled contribution estimates are fragile in two documented ways:
// "On the Fragility of Contribution Score Computation in FL"
// (arXiv 2509.19921) shows scores silently drift under perturbation, and
// FedRandom (arXiv 2602.05693) shows sampling-based estimators carry
// run-to-run variance that must be surfaced, not hidden. The engine
// therefore tracks, per applied outcome:
//
//   - score drift: the largest per-participant cumulative-score change
//     over a trailing window of applied outcomes — a converged stream
//     should see this shrink; a sudden widening means the scores the
//     server serves are moving under the caller's feet;
//   - truncation rate: truncated permutation walks / permutations for
//     the last scored round — how much of the Shapley budget the inner
//     GTG truncation actually cut;
//   - sampling variance: the largest per-participant variance of the
//     per-permutation estimates (valuation.ShapleyConfig.Variance);
//   - confidence width: the FedRandom-style 95% half-width
//     1.96·sqrt(variance/permutations) for that worst participant.
//
// All of it is process-local telemetry derived from live Compute results:
// outcome payloads do not persist variance, so after a WAL replay the
// gauges restart cold (drift rebuilds as new rounds arrive; truncation
// and variance stay zero until the first live-scored round).

import "math"

// confidenceZ is the two-sided 95% normal quantile used for the
// confidence half-width.
const confidenceZ = 1.96

// QualitySnapshot is the JSON shape of the engine's score-quality state
// (merged into /v1/stats and the debug bundle).
type QualitySnapshot struct {
	// Window is the configured drift window; Filled is how many applied
	// outcomes it currently holds.
	Window int `json:"window"`
	Filled int `json:"filled"`
	// Drift is the max-abs per-participant cumulative-score change across
	// the window (newest snapshot vs oldest).
	Drift float64 `json:"drift"`
	// TruncationRate is truncated walks / permutations for the last
	// live-scored round.
	TruncationRate float64 `json:"truncation_rate"`
	// SamplingVariance is the worst per-participant sampling variance of
	// the last live-scored round's estimates.
	SamplingVariance float64 `json:"sampling_variance"`
	// ConfidenceWidth is the 95% confidence half-width for that worst
	// participant's score delta.
	ConfidenceWidth float64 `json:"confidence_width"`
}

// qualityState is the engine's trailing drift window plus the last scored
// round's sampling diagnostics. Guarded by Engine.mu.
type qualityState struct {
	window [][]float64 // trailing score snapshots, oldest first
	snap   QualitySnapshot
}

// updateQualityLocked folds one applied outcome into the quality state
// and refreshes the gauges. Caller holds e.mu.
func (e *Engine) updateQualityLocked(out *Outcome) {
	if e.cfg.QualityWindow < 0 {
		return
	}
	q := &e.quality
	scores := make([]float64, len(e.scores))
	copy(scores, e.scores)
	q.window = append(q.window, scores)
	if len(q.window) > e.cfg.QualityWindow {
		q.window = append(q.window[:0], q.window[len(q.window)-e.cfg.QualityWindow:]...)
	}

	drift := 0.0
	if len(q.window) >= 2 {
		oldest := q.window[0]
		for id, cur := range scores {
			old := 0.0
			if id < len(oldest) {
				old = oldest[id]
			}
			if d := abs(cur - old); d > drift {
				drift = d
			}
		}
	}
	q.snap.Window = e.cfg.QualityWindow
	q.snap.Filled = len(q.window)
	q.snap.Drift = drift
	if !out.Skipped && out.Permutations > 0 {
		q.snap.TruncationRate = float64(out.Truncated) / float64(out.Permutations)
		maxVar := 0.0
		for _, v := range out.Variance {
			if v > maxVar {
				maxVar = v
			}
		}
		q.snap.SamplingVariance = maxVar
		q.snap.ConfidenceWidth = confidenceZ * math.Sqrt(maxVar/float64(out.Permutations))
	}
	e.obs.ScoreDrift.Set(q.snap.Drift)
	e.obs.TruncationRate.Set(q.snap.TruncationRate)
	e.obs.SamplingVariance.Set(q.snap.SamplingVariance)
	e.obs.ConfidenceWidth.Set(q.snap.ConfidenceWidth)
}

// Quality returns the current score-quality snapshot.
func (e *Engine) Quality() QualitySnapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.quality.snap
}
