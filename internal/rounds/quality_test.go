package rounds

import (
	"testing"

	"repro/internal/telemetry"
)

func TestQualityInstruments(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fix := fixture(t)
	reg := telemetry.NewRegistry()
	obs := NewObs(reg)
	e := streamAll(t, fix, Config{
		Model: fix.sim.Model, EvalX: fix.evalX, EvalY: fix.evalY,
		Seed: 9, Permutations: 12, Epsilon: -1, Obs: obs, QualityWindow: 4,
	})

	q := e.Quality()
	if q.Window != 4 {
		t.Fatalf("window = %d, want 4", q.Window)
	}
	if q.Filled != 4 {
		t.Fatalf("filled = %d after 8 rounds with window 4", q.Filled)
	}
	if q.Drift <= 0 {
		t.Fatalf("drift = %v for a still-moving stream", q.Drift)
	}
	if q.TruncationRate < 0 || q.TruncationRate > 1 {
		t.Fatalf("truncation rate = %v", q.TruncationRate)
	}
	if q.SamplingVariance < 0 || q.ConfidenceWidth < 0 {
		t.Fatalf("negative quality values: %+v", q)
	}
	// A sampled estimate over a non-trivial game carries real spread.
	if q.SamplingVariance == 0 || q.ConfidenceWidth == 0 {
		t.Fatalf("sampling spread reported as exactly zero: %+v", q)
	}

	snap := reg.Snapshot()
	for name, want := range map[string]float64{
		"ctfl_rounds_score_drift":       q.Drift,
		"ctfl_rounds_truncation_rate":   q.TruncationRate,
		"ctfl_rounds_sampling_variance": q.SamplingVariance,
		"ctfl_rounds_confidence_width":  q.ConfidenceWidth,
	} {
		got, ok := snap[name].(float64)
		if !ok || got != want {
			t.Fatalf("gauge %s = %v, want %v", name, snap[name], want)
		}
	}
}

func TestQualityDriftTracksTrailingWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fix := fixture(t)
	e, err := New(Config{
		Model: fix.sim.Model, EvalX: fix.evalX, EvalY: fix.evalY,
		Seed: 9, Permutations: 8, Epsilon: -1, QualityWindow: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var prev []float64
	pushed := 0
	for round, ups := range fix.sim.Updates {
		if len(ups) == 0 {
			continue
		}
		before := e.Snapshot().Scores
		pushRound(t, e, round, toParts(ups))
		pushed++
		if pushed < 2 {
			prev = before
			continue
		}
		// Window 2: drift compares the current scores against the previous
		// applied snapshot.
		cur := e.Snapshot().Scores
		want := 0.0
		for id, c := range cur {
			old := 0.0
			if id < len(before) {
				old = before[id]
			}
			if d := abs(c - old); d > want {
				want = d
			}
		}
		if got := e.Quality().Drift; got != want {
			t.Fatalf("round %d drift = %v, want %v", round, got, want)
		}
		prev = before
	}
	_ = prev
	if pushed < 3 {
		t.Fatalf("fixture pushed only %d rounds", pushed)
	}
}

func TestQualityDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fix := fixture(t)
	e := streamAll(t, fix, Config{
		Model: fix.sim.Model, EvalX: fix.evalX, EvalY: fix.evalY,
		Seed: 9, Permutations: 8, Epsilon: -1, QualityWindow: -1,
	})
	if q := e.Quality(); q != (QualitySnapshot{}) {
		t.Fatalf("disabled quality tracked state: %+v", q)
	}
}

// TestQualityReplayRestartsCold pins the documented restart semantics:
// replayed payloads rebuild scores (so drift resumes) but carry no
// sampling diagnostics, which stay zero until the next live-scored round.
func TestQualityReplayRestartsCold(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fix := fixture(t)
	live := streamAll(t, fix, Config{
		Model: fix.sim.Model, EvalX: fix.evalX, EvalY: fix.evalY,
		Seed: 9, Permutations: 8, Epsilon: -1, QualityWindow: 4,
	})
	if live.Quality().SamplingVariance == 0 {
		t.Fatal("live engine has no sampling diagnostics to contrast with")
	}
	replayed, err := New(Config{
		Model: fix.sim.Model, EvalX: fix.evalX, EvalY: fix.evalY,
		Seed: 9, Permutations: 8, Epsilon: -1, QualityWindow: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range live.Payloads() {
		if err := replayed.ApplyPayload(p); err != nil {
			t.Fatal(err)
		}
	}
	q := replayed.Quality()
	if q.Filled != 4 || q.Drift != live.Quality().Drift {
		t.Fatalf("replayed drift diverged: %+v vs %+v", q, live.Quality())
	}
	if q.SamplingVariance != 0 || q.TruncationRate != 0 || q.ConfidenceWidth != 0 {
		t.Fatalf("replayed engine claims sampling diagnostics it never computed: %+v", q)
	}
}
