package rounds

// Contribution-gated client selection — the ContAvg defense. Live CTFL
// scores feed back into FedAvg's client selection: a participant whose
// cumulative contribution falls below a threshold is flagged as gated, and
// a gating aggregator excludes its updates until the score recovers. The
// feedback loop is what turns the score from a passive report into a
// defense: free-riders, scaling attackers and label flippers all demote
// their own scores, and demotion removes them from the aggregate.
//
// Two protections keep the gate from thrashing honest clients:
//
//   - warmup: no gate decision is taken before Warmup outcomes have been
//     applied — early scores are dominated by sampling noise and every
//     participant starts at exactly 0;
//   - hysteresis: a gated participant is only readmitted once its score
//     climbs to Threshold+Hysteresis, so a client oscillating around the
//     threshold does not flap in and out of the aggregate.
//
// Determinism contract: gate state is a pure function of (Config, ordered
// outcome sequence). Decisions are re-derived from the replayed scores on
// every applyLocked — gated flags and the transition log rebuild
// bit-identically after a WAL restore, at any worker count, with no extra
// durable records.

import (
	"fmt"
	"sort"

	"repro/internal/fedsim"
	"repro/internal/protocol"
)

// GateConfig parameterizes contribution gating (Config.Gate).
type GateConfig struct {
	// Threshold gates a participant once its cumulative score drops below
	// this value (strictly less than). Scores start at 0, so thresholds
	// are typically small negative values: a participant must demonstrably
	// hurt the coalition before it is excluded.
	Threshold float64
	// Warmup is how many applied outcomes must land before gate decisions
	// begin. 0 gates from the first outcome.
	Warmup int
	// Hysteresis is the readmission margin: a gated participant returns
	// only once its score reaches Threshold+Hysteresis. 0 readmits at the
	// threshold itself.
	Hysteresis float64
}

// GateEvent is one gate transition: a participant excluded from (Gated
// true) or readmitted to (Gated false) aggregation.
type GateEvent struct {
	// Round is the round whose applied outcome triggered the transition.
	Round int
	// Participant is the affected participant id.
	Participant int
	// Gated is the new state.
	Gated bool
	// Score is the cumulative score that crossed the boundary.
	Score float64
}

// String renders the transition for logs and flight-event details.
func (ev GateEvent) String() string {
	verb := "gated"
	if !ev.Gated {
		verb = "readmitted"
	}
	return fmt.Sprintf("participant %d %s at round %d (score %.4f)", ev.Participant, verb, ev.Round, ev.Score)
}

// updateGateLocked re-derives gate state from the cumulative scores after
// one applied outcome. Caller holds e.mu.
func (e *Engine) updateGateLocked(round int) {
	g := e.cfg.Gate
	if g == nil || e.applied <= g.Warmup {
		return
	}
	for id, sc := range e.scores {
		for id >= len(e.gated) {
			e.gated = append(e.gated, false)
		}
		switch {
		case !e.gated[id] && sc < g.Threshold:
			e.gated[id] = true
			e.gateLog = append(e.gateLog, GateEvent{Round: round, Participant: id, Gated: true, Score: sc})
			e.obs.Gated.Inc()
		case e.gated[id] && sc >= g.Threshold+g.Hysteresis:
			e.gated[id] = false
			e.gateLog = append(e.gateLog, GateEvent{Round: round, Participant: id, Gated: false, Score: sc})
		}
	}
}

// Gated returns the current gate flags, indexed by participant id and
// aligned with Snapshot().Scores. All false when gating is disabled.
func (e *Engine) Gated() []bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]bool, len(e.scores))
	copy(out, e.gated)
	return out
}

// GateEvents returns every gate transition so far, in application order.
func (e *Engine) GateEvents() []GateEvent {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]GateEvent, len(e.gateLog))
	copy(out, e.gateLog)
	return out
}

// ContAvg adapts a (gated) Engine to fedsim's RoundSelector: every round's
// submitted updates stream into the engine, and the engine's gate flags
// decide which clients the next round may aggregate. Gated clients keep
// submitting and keep being scored — that is what makes hysteretic
// readmission possible — they are only excluded from the weighted average.
//
// With Config.Gate nil the adapter is a pure observer: it scores the
// stream and admits everyone, which is exactly the ungated baseline the
// defense experiments compare against.
type ContAvg struct {
	Engine *Engine
}

// Select implements fedsim.RoundSelector: the available participants minus
// those currently gated.
func (c *ContAvg) Select(round int, available []int) []int {
	gated := c.Engine.Gated()
	out := make([]int, 0, len(available))
	for _, id := range available {
		if id >= 0 && id < len(gated) && gated[id] {
			continue
		}
		out = append(out, id)
	}
	return out
}

// Observe implements fedsim.RoundSelector: it frames the round's submitted
// updates as a wire round-update and runs it through the engine's
// compute→apply path, advancing scores and gate state.
func (c *ContAvg) Observe(round int, updates []fedsim.ClientUpdate) error {
	if len(updates) == 0 {
		return nil
	}
	parts := make([]protocol.RoundParticipant, len(updates))
	for i, u := range updates {
		parts[i] = protocol.RoundParticipant{ID: u.Participant, Weight: u.Weight, Params: u.Params}
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].ID < parts[j].ID })
	frame, err := protocol.AppendRoundUpdate(nil, round, parts)
	if err != nil {
		return fmt.Errorf("rounds: gate observe round %d: %w", round, err)
	}
	f, _, err := protocol.ParseFrame(frame)
	if err != nil {
		return err
	}
	u, err := protocol.ParseRoundUpdate(f)
	if err != nil {
		return err
	}
	out, err := c.Engine.Compute(u)
	if err != nil {
		return err
	}
	return c.Engine.Apply(out)
}
