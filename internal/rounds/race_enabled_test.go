//go:build race

package rounds

// raceEnabled reports the race detector is on: sync.Pool deliberately drops
// cached items under -race, so pool-backed zero-alloc pins cannot hold.
const raceEnabled = true
