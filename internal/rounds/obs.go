package rounds

import (
	"repro/internal/protocol"
	"repro/internal/telemetry"
)

// protocolMaxRoundParticipants re-exports the wire bound for the outcome
// decoder's defensive checks.
const protocolMaxRoundParticipants = protocol.MaxRoundParticipants

// Obs collects the round-stream engine's instrumentation. A nil Obs on
// Config disables all of it; the zero value is inert (every instrument is a
// nil-safe no-op).
type Obs struct {
	// Ingested counts applied round outcomes (scored + skipped).
	Ingested *telemetry.Counter
	// Skipped counts rounds cut by between-round truncation (utility delta
	// below epsilon: marginals taken as zero at the cost of one
	// reconstruction).
	Skipped *telemetry.Counter
	// InnerTruncations counts permutation walks cut short by within-round
	// truncation.
	InnerTruncations *telemetry.Counter
	// Evals counts coalition model reconstructions evaluated.
	Evals *telemetry.Counter
	// Gated counts participants newly excluded by the contribution gate
	// (readmissions do not count; see gate.go).
	Gated *telemetry.Counter
	// UpdateSeconds times one round's score update (Compute), skipped
	// rounds included.
	UpdateSeconds *telemetry.Histogram
	// Staleness gauges seconds since the last applied outcome. The engine
	// never scans a clock on its own; the serving layer sets this from
	// Engine.Staleness at scrape/query time.
	Staleness *telemetry.Gauge
	// Score-quality gauges (see quality.go): drift over the trailing
	// window, and the last scored round's truncation rate, worst sampling
	// variance, and confidence half-width.
	ScoreDrift       *telemetry.Gauge
	TruncationRate   *telemetry.Gauge
	SamplingVariance *telemetry.Gauge
	ConfidenceWidth  *telemetry.Gauge
}

// inertObs is the shared no-op instrument set used when Config.Obs is nil.
var inertObs = &Obs{}

// NewObs registers the round-stream metric family on r and returns the
// handle to set as Config.Obs.
func NewObs(r *telemetry.Registry) *Obs {
	return &Obs{
		Ingested: r.Counter("ctfl_rounds_ingested_total", "round outcomes applied to the streaming score state"),
		Skipped:  r.Counter("ctfl_rounds_skipped_total", "rounds skipped by between-round truncation (GTG epsilon)"),
		InnerTruncations: r.Counter("ctfl_rounds_inner_truncations_total",
			"permutation walks cut short by within-round truncation"),
		Evals: r.Counter("ctfl_rounds_evals_total", "coalition model reconstructions evaluated"),
		Gated: r.Counter("ctfl_rounds_gated_total",
			"participants newly excluded from aggregation by the contribution gate"),
		UpdateSeconds: r.Histogram("ctfl_rounds_update_seconds",
			"one round's incremental score update (skipped rounds included)", nil),
		Staleness: r.Gauge("ctfl_rounds_score_staleness_seconds",
			"seconds since the streaming scores last advanced (set at scrape time)"),
		ScoreDrift: r.Gauge("ctfl_rounds_score_drift",
			"max-abs per-participant score change over the trailing quality window"),
		TruncationRate: r.Gauge("ctfl_rounds_truncation_rate",
			"truncated walks / permutations for the last scored round"),
		SamplingVariance: r.Gauge("ctfl_rounds_sampling_variance",
			"worst per-participant sampling variance of the last scored round"),
		ConfidenceWidth: r.Gauge("ctfl_rounds_confidence_width",
			"95% confidence half-width of the worst participant's last score delta"),
	}
}
