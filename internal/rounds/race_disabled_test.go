//go:build !race

package rounds

const raceEnabled = false
