// Package rounds is the streaming per-round valuation engine: it ingests
// one aggregation round's participant model updates at a time and maintains
// incremental per-participant contribution scores, GTG-Shapley style
// (arXiv 2109.02053).
//
// Instead of retraining a model per coalition (the batch oracle in
// internal/valuation), each round's coalition models are *reconstructed* by
// weighted aggregation of the updates the clients already sent — one model
// build plus one evaluation per distinct coalition, no gradient steps. Two
// truncations keep the per-round cost sublinear in practice:
//
//   - between rounds: when the grand-coalition utility moved less than
//     Epsilon since the previous scored round, the whole round is skipped
//     (its marginals are taken as zero) — after convergence a round costs
//     exactly one reconstruction;
//   - within a round: truncated permutation sampling (valuation.
//     SampledShapley with TruncationEps) stops a walk once its running
//     coalition utility is within InnerEpsilon of the round's full utility.
//
// Determinism contract: scores are a pure function of (Config, ordered
// round-update sequence). Per-round permutations are drawn from a seed
// derived only from Config.Seed and the round number, utilities are
// memoized per round by a valuation oracle, and the sampling reduction is
// bit-identical at any Workers count — so the same stream replayed on any
// machine, at any concurrency, yields bit-identical float64 scores.
//
// Durability: every ingested round produces one Outcome whose Payload is a
// compact binary record (round, flags, full utility, per-participant score
// deltas). Applying payloads replays pure additions — no oracle calls — so
// a restarted server resumes scores bit-identically with zero recomputation
// of round utilities.
package rounds

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/nn"
	"repro/internal/protocol"
	"repro/internal/valuation"
)

// ErrStaleRound rejects a round-update at or below the engine's high-water
// round: each round is scored exactly once, so a duplicate (e.g. a client
// retrying a push whose response was lost) must not double-count deltas.
var ErrStaleRound = errors.New("rounds: round already ingested")

// ErrConflict rejects applying an Outcome computed against a different
// engine state than the current one (another round was applied in between).
var ErrConflict = errors.New("rounds: engine advanced since outcome was computed")

// Config parameterizes an Engine. Model, EvalX and EvalY are required.
type Config struct {
	// Model is the architecture template for coalition reconstruction: each
	// evaluation clones it and overwrites its parameters with the weighted
	// aggregate of the coalition's updates. Round-update frames must carry
	// exactly len(Model.Params()) parameters.
	Model *nn.Model
	// EvalX/EvalY is the encoded held-out evaluation set coalition utilities
	// are measured on (accuracy).
	EvalX [][]float64
	EvalY []int
	// Epsilon is the between-round truncation threshold: a round whose
	// grand-coalition utility is within Epsilon of the previous scored
	// round's is skipped entirely. 0 means the default (1e-3); negative
	// disables between-round skipping.
	Epsilon float64
	// InnerEpsilon is the within-round truncation threshold handed to
	// SampledShapley. 0 means "same as Epsilon"; negative disables it.
	InnerEpsilon float64
	// Permutations per scored round; 0 uses SampledShapley's default
	// (ceil(n·log2(n+1)) over the round's n present participants).
	Permutations int
	// Seed drives permutation sampling. The per-round stream is derived
	// from it, so the same seed replays the same estimates.
	Seed int64
	// Workers bounds concurrent coalition evaluations per round; 0 means
	// GOMAXPROCS. Scores are bit-identical at any value.
	Workers int
	// Obs receives engine telemetry; nil disables all of it.
	Obs *Obs
	// QualityWindow is the trailing number of applied outcomes score drift
	// is measured over (see quality.go). 0 means 16; negative disables the
	// quality instruments.
	QualityWindow int
	// Gate enables contribution-gated client selection (the ContAvg
	// defense, see gate.go): participants whose cumulative score falls
	// below Gate.Threshold are flagged as gated after every applied
	// outcome. Nil disables gating.
	Gate *GateConfig
}

func (c Config) withDefaults() Config {
	if c.Epsilon == 0 {
		c.Epsilon = 1e-3
	}
	if c.InnerEpsilon == 0 {
		c.InnerEpsilon = c.Epsilon
	}
	if c.QualityWindow == 0 {
		c.QualityWindow = 16
	}
	return c
}

// Engine is the round-stream valuation state machine. Construct with New;
// methods are safe for concurrent use, but rounds are scored one at a time
// (Compute against the current high-water, then Apply).
type Engine struct {
	cfg          Config
	paramCount   int
	emptyUtility float64
	obs          *Obs

	mu       sync.Mutex
	rounds   int // high-water: last applied round + 1
	skipped  int // rounds skipped by between-round truncation
	applied  int // outcomes applied (distinguishes "no rounds yet" from gaps)
	prevFull float64
	scores   []float64 // cumulative contribution, indexed by participant id
	payloads [][]byte  // applied outcome payloads, in order (compaction input)
	updated  chan struct{}
	lastTick time.Time
	quality  qualityState
	gated    []bool      // contribution-gate state, indexed by participant id
	gateLog  []GateEvent // gate transitions, in application order

	evals      atomic.Int64
	truncWalks atomic.Int64

	// scratch pools per-coalition-evaluation working sets (one model clone
	// plus its aggregation buffer). A round evaluates tens to thousands of
	// coalitions and every one used to pay a full Clone — random weight
	// init, RNG seeding, fresh Adam state — only to overwrite all of it
	// with SetParams. The pool self-sizes to the engine's worker count.
	scratch sync.Pool
}

// evalScratch is one coalition evaluation's working set: a reusable model
// whose parameters are overwritten per evaluation, and the flat buffer the
// coalition's weighted aggregate is accumulated in.
type evalScratch struct {
	m   *nn.Model
	agg []float64
}

// New builds an engine. The empty-coalition utility is the evaluation set's
// majority-class accuracy, mirroring valuation.NewOracle.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.Model == nil {
		return nil, errors.New("rounds: Config.Model is required")
	}
	if len(cfg.EvalX) == 0 || len(cfg.EvalX) != len(cfg.EvalY) {
		return nil, fmt.Errorf("rounds: evaluation set has %d rows and %d labels", len(cfg.EvalX), len(cfg.EvalY))
	}
	pos := 0
	for _, y := range cfg.EvalY {
		if y == 1 {
			pos++
		}
	}
	maj := float64(pos) / float64(len(cfg.EvalY))
	if maj < 0.5 {
		maj = 1 - maj
	}
	e := &Engine{
		cfg:          cfg,
		paramCount:   len(cfg.Model.Params()),
		emptyUtility: maj,
		obs:          cfg.Obs,
		updated:      make(chan struct{}),
	}
	if e.obs == nil {
		e.obs = inertObs
	}
	return e, nil
}

// ParamCount is the flat parameter count round-update frames must carry.
func (e *Engine) ParamCount() int { return e.paramCount }

// Rounds reports the high-water mark: last applied round + 1.
func (e *Engine) Rounds() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rounds
}

// Evals reports coalition reconstructions evaluated since construction.
// Replay applies outcomes without evaluating, so after a WAL restore this
// is 0 — the zero-recomputation guarantee the resume tests pin.
func (e *Engine) Evals() int { return int(e.evals.Load()) }

// TruncatedWalks reports permutation walks cut short by within-round
// truncation since construction.
func (e *Engine) TruncatedWalks() int { return int(e.truncWalks.Load()) }

// Staleness is the time since the last applied outcome; 0 before the first.
func (e *Engine) Staleness() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.lastTick.IsZero() {
		return 0
	}
	return time.Since(e.lastTick)
}

// Snapshot returns the current scores state (copied).
func (e *Engine) Snapshot() protocol.ScoresSnapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	scores := make([]float64, len(e.scores))
	copy(scores, e.scores)
	return protocol.ScoresSnapshot{Rounds: e.rounds, Skipped: e.skipped, Scores: scores}
}

// Payloads returns the applied outcome payloads in order — the compaction
// input a durable server snapshots alongside the evaluation set.
func (e *Engine) Payloads() [][]byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([][]byte, len(e.payloads))
	copy(out, e.payloads)
	return out
}

// Wait blocks until the high-water round count reaches minRounds (or ctx
// ends). It backs the GET /v1/scores ?wait= long-poll.
func (e *Engine) Wait(ctx context.Context, minRounds int) error {
	for {
		e.mu.Lock()
		if e.rounds >= minRounds {
			e.mu.Unlock()
			return nil
		}
		ch := e.updated
		e.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Compute scores one round-update against the current engine state without
// mutating it. The returned Outcome must be handed to Apply (after the
// caller has durably persisted its Payload) to take effect; Outcome records
// the state basis it was computed against, and Apply rejects it if another
// round landed in between. u.Round below the high-water mark is
// ErrStaleRound.
func (e *Engine) Compute(u protocol.RoundUpdate) (*Outcome, error) {
	if u.ParamCount != e.paramCount {
		return nil, fmt.Errorf("rounds: update carries %d params, model has %d", u.ParamCount, e.paramCount)
	}
	e.mu.Lock()
	basis := e.rounds
	started := e.applied > 0
	prev := e.prevFull
	e.mu.Unlock()
	if u.Round < basis {
		return nil, fmt.Errorf("%w: round %d, high-water %d", ErrStaleRound, u.Round, basis)
	}

	start := time.Now()
	oracle, err := valuation.NewFuncOracle(u.Count, func(mask uint64) (float64, error) {
		return e.evalCoalition(u, mask)
	})
	if err != nil {
		return nil, err
	}
	oracle.Workers = e.cfg.Workers
	oracle.EmptyUtility = e.emptyUtility

	full := uint64(1)<<uint(u.Count) - 1
	vFull, err := oracle.Utility(full)
	if err != nil {
		return nil, err
	}

	out := &Outcome{basis: basis, Round: u.Round, VFull: vFull}
	if started && e.cfg.Epsilon > 0 && abs(vFull-prev) < e.cfg.Epsilon {
		// Between-round truncation: the global model barely moved, so every
		// marginal this round is taken as zero. Cost: one reconstruction.
		out.Skipped = true
		out.Evals = oracle.Evals()
		e.evals.Add(int64(out.Evals))
		e.obs.UpdateSeconds.ObserveSince(start)
		return out, nil
	}

	var trunc atomic.Int64
	var variance []float64
	var nperm int
	phi, err := valuation.SampledShapley(u.Count, oracle.Utility, valuation.ShapleyConfig{
		Permutations:  e.cfg.Permutations,
		TruncationEps: max(e.cfg.InnerEpsilon, 0),
		Rand:          rand.New(rand.NewSource(permSeed(e.cfg.Seed, u.Round))),
		Workers:       e.cfg.Workers,
		Warm:          oracle.EvalBatch,
		Truncated:     &trunc,
		Variance:      &variance,
		PermCount:     &nperm,
	})
	if err != nil {
		return nil, err
	}
	out.IDs = make([]int, u.Count)
	out.Deltas = phi
	for i := range out.IDs {
		out.IDs[i] = u.ID(i)
	}
	out.Evals = oracle.Evals()
	out.Truncated = int(trunc.Load())
	out.Permutations = nperm
	out.Variance = variance
	e.evals.Add(int64(out.Evals))
	e.truncWalks.Add(trunc.Load())
	e.obs.UpdateSeconds.ObserveSince(start)
	return out, nil
}

// Apply commits a computed outcome. It fails with ErrConflict when the
// engine advanced past the outcome's basis — the caller's serialization
// (one round in flight at a time) makes that unreachable in practice, but
// the check keeps a race from silently corrupting scores.
func (e *Engine) Apply(out *Outcome) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if out.basis != e.rounds {
		return fmt.Errorf("%w: basis %d, high-water %d", ErrConflict, out.basis, e.rounds)
	}
	e.applyLocked(out, out.Payload())
	return nil
}

// ApplyPayload replays one durable outcome record (WAL restore): pure score
// additions, no coalition evaluation. Records must arrive in their original
// order; a round at or below the high-water mark is ErrStaleRound.
func (e *Engine) ApplyPayload(p []byte) error {
	out, err := DecodeOutcome(p)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.applied > 0 && out.Round < e.rounds {
		return fmt.Errorf("%w: round %d, high-water %d", ErrStaleRound, out.Round, e.rounds)
	}
	// Keep the caller's bytes out of engine state: payloads are retained for
	// compaction and must not alias a buffer the caller may reuse.
	retained := make([]byte, len(p))
	copy(retained, p)
	e.applyLocked(out, retained)
	return nil
}

// applyLocked mutates engine state with one outcome. Caller holds e.mu.
func (e *Engine) applyLocked(out *Outcome, payload []byte) {
	e.rounds = out.Round + 1
	e.prevFull = out.VFull
	e.applied++
	if out.Skipped {
		e.skipped++
		e.obs.Skipped.Inc()
	} else {
		for i, id := range out.IDs {
			for id >= len(e.scores) {
				e.scores = append(e.scores, 0)
			}
			e.scores[id] += out.Deltas[i]
		}
	}
	e.payloads = append(e.payloads, payload)
	e.lastTick = time.Now()
	e.obs.Ingested.Inc()
	e.obs.Evals.Add(int64(out.Evals))
	e.obs.InnerTruncations.Add(int64(out.Truncated))
	e.updateGateLocked(out.Round)
	e.updateQualityLocked(out)
	close(e.updated)
	e.updated = make(chan struct{})
}

// evalCoalition reconstructs the coalition's model — the weighted average
// of its members' update parameters, FedAvg semantics over the members
// present in this round — and measures its accuracy on the evaluation set.
// Safe for concurrent use: every call works on its own clone and scratch.
//
// For the grand coalition this reproduces fedsim's aggregation arithmetic
// exactly (same member order, same float operations), so the reconstructed
// full model is bit-identical to the global model the round produced.
func (e *Engine) evalCoalition(u protocol.RoundUpdate, mask uint64) (float64, error) {
	if mask == 0 {
		return e.emptyUtility, nil
	}
	var totalW float64
	for i := 0; i < u.Count; i++ {
		if mask&(1<<uint(i)) != 0 {
			totalW += u.Weight(i)
		}
	}
	sc, _ := e.scratch.Get().(*evalScratch)
	if sc == nil {
		sc = &evalScratch{m: e.cfg.Model.Clone(), agg: make([]float64, e.paramCount)}
	}
	defer e.scratch.Put(sc)
	agg := sc.agg
	// Zeroing keeps the accumulation arithmetic bit-identical to a fresh
	// allocation (the determinism contract covers the float op sequence).
	clear(agg)
	for i := 0; i < u.Count; i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		w := u.Weight(i) / totalW
		for j := range agg {
			agg[j] += w * u.Param(i, j)
		}
	}
	if err := sc.m.SetParams(agg); err != nil {
		return 0, err
	}
	// CountCorrect instead of Accuracy: same division, but serial and
	// allocation-free — evaluation concurrency lives in the oracle above.
	ok := sc.m.CountCorrect(e.cfg.EvalX, e.cfg.EvalY)
	return float64(ok) / float64(len(e.cfg.EvalX)), nil
}

// permSeed derives the per-round permutation seed: a fixed mix of the
// configured seed and the round number (SplitMix64-style), so round t's
// sampling is independent of how many rounds were skipped before it and
// identical across replays.
func permSeed(seed int64, round int) int64 {
	z := uint64(seed) + uint64(round+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
