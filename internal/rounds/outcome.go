package rounds

// Outcome is one ingested round's durable effect on the score state. Its
// binary payload is what the server write-ahead-logs (store.EventRound)
// before applying the outcome, so a restarted server replays score
// arithmetic — never coalition evaluations.
//
// Payload layout (little-endian):
//
//	round  uint32
//	flags  uint8   (bit 0: round skipped by between-round truncation)
//	vFull  uint64  (Float64bits of the grand-coalition utility)
//	count  uint32  (0 when skipped)
//	per entry: id uint32, delta uint64 (Float64bits of the score delta)
//
// Float64 values travel as raw bits so replayed scores are bit-identical,
// NaN payloads included.

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Outcome is the result of scoring one round-update. Zero or more of
// IDs/Deltas depending on Skipped; basis is the engine high-water the
// outcome was computed against (Apply's optimistic-concurrency check).
type Outcome struct {
	Round int
	// VFull is the grand-coalition (all present participants) utility —
	// the next round's between-round truncation reference.
	VFull float64
	// Skipped marks a round cut by between-round truncation: no deltas.
	Skipped bool
	// IDs/Deltas are the per-participant score increments, in frame
	// (ascending id) order. Empty when Skipped.
	IDs    []int
	Deltas []float64
	// Evals counts coalition reconstructions this round cost; Truncated
	// counts permutation walks cut short. Telemetry only — not persisted.
	Evals     int
	Truncated int
	// Permutations is how many permutations the round's sampling drew and
	// Variance the per-participant sampling variance of the estimates
	// (aligned with IDs). Telemetry only — not persisted, so replayed
	// outcomes carry zeros and the quality gauges restart cold.
	Permutations int
	Variance     []float64

	basis int
}

const outcomeHeaderLen = 4 + 1 + 8 + 4

// outcomeFlagSkipped marks a between-round-truncated outcome.
const outcomeFlagSkipped = 1

// Payload encodes the outcome as one durable record.
func (o *Outcome) Payload() []byte {
	buf := make([]byte, 0, outcomeHeaderLen+len(o.IDs)*12)
	var b8 [8]byte
	binary.LittleEndian.PutUint32(b8[:4], uint32(o.Round))
	buf = append(buf, b8[:4]...)
	flags := byte(0)
	if o.Skipped {
		flags |= outcomeFlagSkipped
	}
	buf = append(buf, flags)
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(o.VFull))
	buf = append(buf, b8[:]...)
	binary.LittleEndian.PutUint32(b8[:4], uint32(len(o.IDs)))
	buf = append(buf, b8[:4]...)
	for i, id := range o.IDs {
		binary.LittleEndian.PutUint32(b8[:4], uint32(id))
		buf = append(buf, b8[:4]...)
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(o.Deltas[i]))
		buf = append(buf, b8[:]...)
	}
	return buf
}

// DecodeOutcome parses one durable outcome record.
func DecodeOutcome(p []byte) (*Outcome, error) {
	if len(p) < outcomeHeaderLen {
		return nil, fmt.Errorf("rounds: outcome record too short (%d bytes)", len(p))
	}
	o := &Outcome{
		Round:   int(binary.LittleEndian.Uint32(p[0:4])),
		Skipped: p[4]&outcomeFlagSkipped != 0,
		VFull:   math.Float64frombits(binary.LittleEndian.Uint64(p[5:13])),
	}
	count := int64(binary.LittleEndian.Uint32(p[13:17]))
	if count > protocolMaxRoundParticipants {
		return nil, fmt.Errorf("rounds: outcome entry count %d exceeds limit", count)
	}
	if o.Skipped && count != 0 {
		return nil, fmt.Errorf("rounds: skipped outcome carries %d deltas", count)
	}
	if want := int64(outcomeHeaderLen) + 12*count; int64(len(p)) != want {
		return nil, fmt.Errorf("rounds: outcome record %d bytes, want %d for %d entries", len(p), want, count)
	}
	prev := -1
	at := outcomeHeaderLen
	for i := int64(0); i < count; i++ {
		id := int(binary.LittleEndian.Uint32(p[at:]))
		if id <= prev || id >= protocolMaxRoundParticipants {
			return nil, fmt.Errorf("rounds: outcome id %d not strictly increasing in [0,%d)",
				id, protocolMaxRoundParticipants)
		}
		prev = id
		o.IDs = append(o.IDs, id)
		o.Deltas = append(o.Deltas, math.Float64frombits(binary.LittleEndian.Uint64(p[at+4:])))
		at += 12
	}
	// Replay applies records in order; the decoded basis is the record's own
	// round (ApplyPayload enforces monotonicity itself).
	o.basis = o.Round
	return o, nil
}
