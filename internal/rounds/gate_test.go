package rounds

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/protocol"
	"repro/internal/telemetry"
)

// gateTestEngine builds a minimal engine for gate-policy tests; scores are
// driven by ApplyPayload with hand-crafted outcomes, so the model and eval
// set are never actually consulted.
func gateTestEngine(t *testing.T, gate *GateConfig, obs *Obs) *Engine {
	t.Helper()
	model, err := nn.New(4, nn.Config{Hidden: []int{2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Model: model,
		EvalX: [][]float64{{1, 0, 1, 0}, {0, 1, 0, 1}},
		EvalY: []int{1, 0},
		Gate:  gate,
		Obs:   obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// applyDeltas replays one synthetic outcome carrying the given per-id
// score deltas.
func applyDeltas(t *testing.T, e *Engine, round int, vFull float64, ids []int, deltas []float64) {
	t.Helper()
	out := &Outcome{Round: round, VFull: vFull, IDs: ids, Deltas: deltas}
	if err := e.ApplyPayload(out.Payload()); err != nil {
		t.Fatalf("round %d: %v", round, err)
	}
}

func TestGateThresholdWarmupHysteresis(t *testing.T) {
	reg := telemetry.NewRegistry()
	obs := NewObs(reg)
	e := gateTestEngine(t, &GateConfig{Threshold: -0.1, Warmup: 2, Hysteresis: 0.05}, obs)

	// Rounds 0 and 1 land inside the warmup: participant 1 is already far
	// below threshold but must not be gated yet.
	applyDeltas(t, e, 0, 0.6, []int{0, 1}, []float64{0.2, -0.5})
	applyDeltas(t, e, 1, 0.7, []int{0, 1}, []float64{0.01, 0})
	if g := e.Gated(); g[0] || g[1] {
		t.Fatalf("gated during warmup: %v", g)
	}
	if n := len(e.GateEvents()); n != 0 {
		t.Fatalf("%d gate events during warmup", n)
	}

	// Third outcome: warmup over, participant 1 (score -0.5) gates.
	applyDeltas(t, e, 2, 0.8, []int{0, 1}, []float64{0.01, 0})
	g := e.Gated()
	if g[0] || !g[1] {
		t.Fatalf("after warmup: gated = %v, want [false true]", g)
	}
	ev := e.GateEvents()
	if len(ev) != 1 || ev[0].Participant != 1 || !ev[0].Gated || ev[0].Round != 2 {
		t.Fatalf("gate events = %+v", ev)
	}
	if got := obs.Gated.Value(); got != 1 {
		t.Fatalf("ctfl_rounds_gated_total = %d, want 1", got)
	}

	// Score climbs above the threshold but inside the hysteresis band:
	// still gated (-0.09 < -0.1+0.05).
	applyDeltas(t, e, 3, 0.8, []int{0, 1}, []float64{0, 0.41})
	if g := e.Gated(); !g[1] {
		t.Fatal("readmitted inside the hysteresis band")
	}

	// Clears the band: readmitted. Readmissions log an event but do not
	// count toward the gated counter.
	applyDeltas(t, e, 4, 0.8, []int{0, 1}, []float64{0, 0.05})
	if g := e.Gated(); g[1] {
		t.Fatal("not readmitted above threshold+hysteresis")
	}
	ev = e.GateEvents()
	if len(ev) != 2 || ev[1].Participant != 1 || ev[1].Gated || ev[1].Round != 4 {
		t.Fatalf("gate events = %+v", ev)
	}
	if got := obs.Gated.Value(); got != 1 {
		t.Fatalf("readmission changed ctfl_rounds_gated_total to %d", got)
	}
}

func TestGateDisabledNeverGates(t *testing.T) {
	e := gateTestEngine(t, nil, nil)
	applyDeltas(t, e, 0, 0.5, []int{0, 1, 2}, []float64{-5, -5, -5})
	applyDeltas(t, e, 1, 0.6, []int{0, 1, 2}, []float64{-5, -5, -5})
	for i, g := range e.Gated() {
		if g {
			t.Fatalf("participant %d gated with gating disabled", i)
		}
	}
	if n := len(e.GateEvents()); n != 0 {
		t.Fatalf("%d gate events with gating disabled", n)
	}
}

// Gate state must be a pure function of the applied outcome sequence: a
// fresh engine replaying the same payloads (the WAL-restore path) rebuilds
// identical gate flags and the identical transition log.
func TestGateReplayDeterminism(t *testing.T) {
	gate := &GateConfig{Threshold: -0.05, Warmup: 1, Hysteresis: 0.02}
	a := gateTestEngine(t, gate, nil)
	rounds := [][]float64{
		{0.1, -0.2, 0.05},
		{0.02, 0.1, -0.3},
		{0.01, 0.08, 0.1},
		{0, 0.1, 0.3},
	}
	ids := []int{0, 1, 2}
	for r, deltas := range rounds {
		applyDeltas(t, a, r, 0.5+float64(r)*0.01, ids, deltas)
	}

	b := gateTestEngine(t, gate, nil)
	for _, p := range a.Payloads() {
		if err := b.ApplyPayload(p); err != nil {
			t.Fatal(err)
		}
	}

	ga, gb := a.Gated(), b.Gated()
	if len(ga) != len(gb) {
		t.Fatalf("gated lengths differ: %d vs %d", len(ga), len(gb))
	}
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("gate flag %d differs after replay", i)
		}
	}
	ea, eb := a.GateEvents(), b.GateEvents()
	if len(ea) != len(eb) {
		t.Fatalf("gate log lengths differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("gate event %d differs after replay: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	for i := range sa.Scores {
		if math.Float64bits(sa.Scores[i]) != math.Float64bits(sb.Scores[i]) {
			t.Fatalf("score %d differs after replay", i)
		}
	}
}

// Pathological round-updates from a free-rider — all-zero and all-NaN
// parameter vectors — must leave the engine in a sane state: the round is
// either applied in full (scores advance and stay finite) or rejected in
// full (high-water and scores untouched), never half-applied.
func TestPathologicalUpdateIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fix := fixture(t)
	e, err := New(Config{Model: fix.sim.Model, EvalX: fix.evalX, EvalY: fix.evalY, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	// Round 0: a legitimate round from the simulated stream.
	var base []protocol.RoundParticipant
	for _, u := range fix.sim.Updates {
		if len(u) > 0 {
			base = toParts(u)
			break
		}
	}
	pushRound(t, e, 0, base)

	finiteScores := func(stage string) {
		t.Helper()
		for i, s := range e.Snapshot().Scores {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				t.Fatalf("%s: score %d is %v", stage, i, s)
			}
		}
	}
	finiteScores("baseline")

	pc := e.ParamCount()
	push := func(round int, params []float64) {
		t.Helper()
		parts := []protocol.RoundParticipant{
			{ID: 0, Weight: 10, Params: params},
			{ID: 1, Weight: 5, Params: params},
		}
		before := e.Snapshot()
		frame, err := protocol.AppendRoundUpdate(nil, round, parts)
		if err != nil {
			t.Fatal(err)
		}
		f, _, err := protocol.ParseFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		u, err := protocol.ParseRoundUpdate(f)
		if err != nil {
			t.Fatal(err)
		}
		out, err := e.Compute(u)
		if err == nil {
			err = e.Apply(out)
		}
		after := e.Snapshot()
		if err != nil {
			// Clean rejection: nothing moved.
			if after.Rounds != before.Rounds {
				t.Fatalf("round %d rejected (%v) but high-water moved %d → %d", round, err, before.Rounds, after.Rounds)
			}
			for i := range before.Scores {
				if math.Float64bits(before.Scores[i]) != math.Float64bits(after.Scores[i]) {
					t.Fatalf("round %d rejected (%v) but score %d changed", round, err, i)
				}
			}
			return
		}
		if after.Rounds != round+1 {
			t.Fatalf("round %d applied but high-water is %d", round, after.Rounds)
		}
	}

	// All-zero params: a zero free-rider pair. Utilities collapse to the
	// constant accuracy of the zero model; scores must stay finite.
	push(1, make([]float64, pc))
	finiteScores("all-zero round")

	// All-NaN params: the wire format passes NaN through bit-exactly; the
	// engine must contain the damage (accuracy counts stay finite) rather
	// than propagate it into the score state.
	nan := make([]float64, pc)
	for i := range nan {
		nan[i] = math.NaN()
	}
	push(2, nan)
	finiteScores("all-NaN round")
}
