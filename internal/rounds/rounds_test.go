package rounds

import (
	"math"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fedsim"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/protocol"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/valuation"
)

// streamFixture is a federation engineered for clear contribution ranking:
// participant quality degrades monotonically — two clean clients with very
// different data sizes, then three with increasingly flipped labels — so
// both batch Shapley and the streaming estimate should order them 0 > 1 >
// 2 > 3 > 4 with wide gaps.
type streamFixture struct {
	enc     *dataset.Encoder
	trainer *fl.Trainer
	parts   []*fl.Participant
	test    *dataset.Table
	sim     *fedsim.Result
	evalX   [][]float64
	evalY   []int
}

var (
	fixOnce sync.Once
	fixVal  *streamFixture
	fixErr  error
)

func buildStreamFixture() (*streamFixture, error) {
	tab := dataset.TicTacToe()
	r := stats.NewRNG(23)
	train, test := tab.Split(r, 0.25)
	enc, err := dataset.NewEncoder(tab.Schema, 4, r)
	if err != nil {
		return nil, err
	}

	// Manual size-skewed partition: fractions of the shuffled training set,
	// decreasing with participant id.
	perm := r.Perm(train.Len())
	fracs := []float64{0.30, 0.25, 0.20, 0.15, 0.10}
	parts := make([]*fl.Participant, len(fracs))
	at := 0
	for i, f := range fracs {
		n := int(f * float64(train.Len()))
		if i == len(fracs)-1 {
			n = train.Len() - at
		}
		parts[i] = &fl.Participant{ID: i, Name: string(rune('A' + i)), Data: train.Subset(perm[at : at+n])}
		at += n
	}
	// Graded label poisoning aligned with the size skew: every participant
	// is both smaller and dirtier than the one before, so size and quality
	// push the ranking the same way.
	parts[1] = fl.FlipLabels(parts[1], 0.12, r)
	parts[2] = fl.FlipLabels(parts[2], 0.30, r)
	parts[3] = fl.FlipLabels(parts[3], 0.60, r)
	parts[4] = fl.FlipLabels(parts[4], 1.0, r)

	model := nn.Config{Hidden: []int{16}, Seed: 7, BatchSize: 128}
	trainer := fl.NewTrainer(enc, fl.TrainConfig{
		Rounds: 2, LocalEpochs: 3, Parallel: true, Model: model, Seed: 23,
	})
	sim, err := fedsim.Run(enc, parts, test, fedsim.Config{
		Rounds: 8, LocalEpochs: 3, Model: model, Seed: 23,
	})
	if err != nil {
		return nil, err
	}
	evalX, evalY := enc.EncodeTable(test)
	return &streamFixture{
		enc: enc, trainer: trainer, parts: parts, test: test,
		sim: sim, evalX: evalX, evalY: evalY,
	}, nil
}

func fixture(t *testing.T) *streamFixture {
	t.Helper()
	fixOnce.Do(func() { fixVal, fixErr = buildStreamFixture() })
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixVal
}

// toParts converts one fedsim round's updates into wire participants.
func toParts(ups []fedsim.ClientUpdate) []protocol.RoundParticipant {
	out := make([]protocol.RoundParticipant, len(ups))
	for i, u := range ups {
		out[i] = protocol.RoundParticipant{ID: u.Participant, Weight: u.Weight, Params: u.Params}
	}
	return out
}

// pushRound frames and ingests one round into the engine.
func pushRound(t *testing.T, e *Engine, round int, parts []protocol.RoundParticipant) *Outcome {
	t.Helper()
	frame, err := protocol.AppendRoundUpdate(nil, round, parts)
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := protocol.ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	u, err := protocol.ParseRoundUpdate(f)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Compute(u)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Apply(out); err != nil {
		t.Fatal(err)
	}
	return out
}

// streamAll pushes the whole fedsim update stream into a fresh engine.
func streamAll(t *testing.T, fix *streamFixture, cfg Config) *Engine {
	t.Helper()
	if cfg.Model == nil {
		cfg.Model = fix.sim.Model
		cfg.EvalX = fix.evalX
		cfg.EvalY = fix.evalY
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for round, ups := range fix.sim.Updates {
		if len(ups) == 0 {
			continue
		}
		pushRound(t, e, round, toParts(ups))
	}
	return e
}

// TestStreamingMatchesBatchShapley pins the subsystem's reason to exist:
// the streaming per-round estimate, with both truncations active, must
// rank participants like retraining-based batch Shapley ground truth.
func TestStreamingMatchesBatchShapley(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fix := fixture(t)

	oracle, err := valuation.NewOracle(fix.trainer, fix.parts, fix.test)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := valuation.ExactShapley(len(fix.parts), oracle.Utility)
	if err != nil {
		t.Fatal(err)
	}

	e := streamAll(t, fix, Config{Seed: 9, Permutations: 24, InnerEpsilon: -1})
	snap := e.Snapshot()
	if len(snap.Scores) != len(fix.parts) {
		t.Fatalf("streamed scores for %d participants, want %d", len(snap.Scores), len(fix.parts))
	}
	rho := stats.Spearman(snap.Scores, truth)
	t.Logf("streaming scores %v", snap.Scores)
	t.Logf("batch Shapley    %v  (rho %.3f, %d evals, %d/%d rounds skipped)",
		truth, rho, e.Evals(), snap.Skipped, snap.Rounds)
	if rho < 0.9 {
		t.Fatalf("Spearman rho %.3f < 0.9 against batch Shapley", rho)
	}
	// The fully poisoned participant must not look like a contributor.
	if snap.Scores[4] >= snap.Scores[0] {
		t.Fatalf("label-flipped participant outscored the largest clean one: %v", snap.Scores)
	}
}

// TestStreamDeterministicAcrossWorkers pins the determinism contract:
// bit-identical scores at any concurrency.
func TestStreamDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fix := fixture(t)
	base := streamAll(t, fix, Config{Seed: 9, Workers: 1, Epsilon: -1})
	want := base.Snapshot()
	for _, workers := range []int{2, 8} {
		got := streamAll(t, fix, Config{Seed: 9, Workers: workers, Epsilon: -1}).Snapshot()
		if got.Rounds != want.Rounds || got.Skipped != want.Skipped || len(got.Scores) != len(want.Scores) {
			t.Fatalf("workers=%d: snapshot %+v, want %+v", workers, got, want)
		}
		for i := range want.Scores {
			if math.Float64bits(got.Scores[i]) != math.Float64bits(want.Scores[i]) {
				t.Fatalf("workers=%d: score %d = %x, want %x",
					workers, i, math.Float64bits(got.Scores[i]), math.Float64bits(want.Scores[i]))
			}
		}
	}
}

// TestBetweenRoundTruncationSkips pins the GTG between-round cut: pushing
// the same updates again as the next round moves the global utility by
// exactly zero, which must skip the round at the cost of one evaluation.
func TestBetweenRoundTruncationSkips(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fix := fixture(t)
	e, err := New(Config{Model: fix.sim.Model, EvalX: fix.evalX, EvalY: fix.evalY, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var ups []fedsim.ClientUpdate
	for _, u := range fix.sim.Updates {
		if len(u) > 0 {
			ups = u
			break
		}
	}
	first := pushRound(t, e, 0, toParts(ups))
	if first.Skipped {
		t.Fatal("first round skipped; nothing to compare against yet")
	}
	evalsBefore := e.Evals()
	second := pushRound(t, e, 1, toParts(ups))
	if !second.Skipped {
		t.Fatalf("identical round not skipped (vFull %v vs %v)", second.VFull, first.VFull)
	}
	if cost := e.Evals() - evalsBefore; cost > 1 {
		t.Fatalf("skipped round cost %d evaluations, want at most 1", cost)
	}
	snap := e.Snapshot()
	if snap.Skipped != 1 || snap.Rounds != 2 {
		t.Fatalf("snapshot = %+v, want 1 skipped of 2", snap)
	}
}

// TestStaleAndConflictingRounds pins the exactly-once ingest guards.
func TestStaleAndConflictingRounds(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fix := fixture(t)
	e, err := New(Config{Model: fix.sim.Model, EvalX: fix.evalX, EvalY: fix.evalY, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var ups []fedsim.ClientUpdate
	for _, u := range fix.sim.Updates {
		if len(u) > 0 {
			ups = u
			break
		}
	}
	frame, err := protocol.AppendRoundUpdate(nil, 0, toParts(ups))
	if err != nil {
		t.Fatal(err)
	}
	f, _, _ := protocol.ParseFrame(frame)
	u, err := protocol.ParseRoundUpdate(f)
	if err != nil {
		t.Fatal(err)
	}

	// Two outcomes computed against the same basis: the second apply must
	// fail with ErrConflict, not silently double-count.
	out1, err := e.Compute(u)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := e.Compute(u)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Apply(out1); err != nil {
		t.Fatal(err)
	}
	if err := e.Apply(out2); err == nil {
		t.Fatal("conflicting outcome applied")
	}
	// A retried (already-applied) round is stale at Compute time.
	if _, err := e.Compute(u); err == nil {
		t.Fatal("duplicate round recomputed")
	}
}

// TestCrashResumeReplaysBitIdentical kills the engine mid-stream and
// restores it from a real WAL: the replayed engine must hold bit-identical
// scores without evaluating a single coalition, then continue the stream
// exactly like the uninterrupted engine.
func TestCrashResumeReplaysBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fix := fixture(t)
	dir := t.TempDir()
	st, events, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("fresh store replayed %d events", len(events))
	}

	cfg := Config{Model: fix.sim.Model, EvalX: fix.evalX, EvalY: fix.evalY, Seed: 9}
	live, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rounds [][]protocol.RoundParticipant
	for _, ups := range fix.sim.Updates {
		if len(ups) > 0 {
			rounds = append(rounds, toParts(ups))
		}
	}
	cut := len(rounds) / 2
	for i := 0; i < cut; i++ {
		out := pushRound(t, live, i, rounds[i])
		if err := st.Append(store.Event{Type: store.EventRound, Payload: out.Payload()}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// "Crash": the live engine is gone; a new process reopens the WAL.
	st2, events, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	restored, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.Type != store.EventRound {
			t.Fatalf("unexpected replay event type %d", ev.Type)
		}
		if err := restored.ApplyPayload(ev.Payload); err != nil {
			t.Fatal(err)
		}
	}
	if restored.Evals() != 0 {
		t.Fatalf("replay evaluated %d coalitions, want 0", restored.Evals())
	}
	requireSameSnapshot(t, "after replay", restored.Snapshot(), live.Snapshot())

	// The resumed engine continues the stream identically.
	for i := cut; i < len(rounds); i++ {
		pushRound(t, live, i, rounds[i])
		pushRound(t, restored, i, rounds[i])
	}
	requireSameSnapshot(t, "after resume", restored.Snapshot(), live.Snapshot())
	if restored.Evals() >= live.Evals() {
		t.Fatalf("resumed engine evaluated %d coalitions, uninterrupted %d — resume should cost strictly less",
			restored.Evals(), live.Evals())
	}
}

func requireSameSnapshot(t *testing.T, stage string, got, want protocol.ScoresSnapshot) {
	t.Helper()
	if got.Rounds != want.Rounds || got.Skipped != want.Skipped || len(got.Scores) != len(want.Scores) {
		t.Fatalf("%s: snapshot %+v, want %+v", stage, got, want)
	}
	for i := range want.Scores {
		if math.Float64bits(got.Scores[i]) != math.Float64bits(want.Scores[i]) {
			t.Fatalf("%s: score %d = %x, want %x", stage, i,
				math.Float64bits(got.Scores[i]), math.Float64bits(want.Scores[i]))
		}
	}
}

// TestOutcomeCodecRoundTrip pins the durable record format.
func TestOutcomeCodecRoundTrip(t *testing.T) {
	cases := []*Outcome{
		{Round: 0, VFull: 0.75, IDs: []int{0, 2, 5}, Deltas: []float64{0.1, -0.05, math.NaN()}},
		{Round: 7, VFull: math.Inf(1), Skipped: true},
	}
	for _, o := range cases {
		got, err := DecodeOutcome(o.Payload())
		if err != nil {
			t.Fatal(err)
		}
		if got.Round != o.Round || got.Skipped != o.Skipped ||
			math.Float64bits(got.VFull) != math.Float64bits(o.VFull) ||
			len(got.IDs) != len(o.IDs) {
			t.Fatalf("decoded %+v, want %+v", got, o)
		}
		for i := range o.IDs {
			if got.IDs[i] != o.IDs[i] || math.Float64bits(got.Deltas[i]) != math.Float64bits(o.Deltas[i]) {
				t.Fatalf("entry %d changed: %+v vs %+v", i, got, o)
			}
		}
	}

	bad := [][]byte{
		{},
		cases[0].Payload()[:10],
		append(cases[0].Payload(), 0),
	}
	for i, p := range bad {
		if _, err := DecodeOutcome(p); err == nil {
			t.Errorf("bad payload %d accepted", i)
		}
	}
}

// TestEvalCoalitionSteadyStateAllocs pins the scratch pooling: once the
// per-evaluation pool is warm, reconstructing and scoring a coalition heap-
// allocates nothing — the model clone and aggregation buffer are reused
// (BENCH_7 measured 1043 allocs/op on BenchmarkIncrementalScores before the
// pool; a regression here is how that number comes back).
func TestEvalCoalitionSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops cached items under -race")
	}
	const width, nParts = 10, 4
	// Workers=1 keeps Accuracy on its serial path: worker goroutines would
	// charge their stacks to AllocsPerRun and make the pin flaky.
	model, err := nn.New(width, nn.Config{Hidden: []int{6}, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(17)
	evalX := make([][]float64, 32)
	evalY := make([]int, len(evalX))
	for i := range evalX {
		row := make([]float64, width)
		for j := range row {
			row[j] = float64(r.Intn(2))
		}
		evalX[i] = row
		evalY[i] = r.Intn(2)
	}
	e, err := New(Config{Model: model, EvalX: evalX, EvalY: evalY, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	paramCount := len(model.Params())
	parts := make([]protocol.RoundParticipant, nParts)
	for i := range parts {
		params := make([]float64, paramCount)
		for j := range params {
			params[j] = r.NormFloat64()
		}
		parts[i] = protocol.RoundParticipant{ID: i, Weight: float64(1 + i), Params: params}
	}
	frame, err := protocol.AppendRoundUpdate(nil, 0, parts)
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := protocol.ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	u, err := protocol.ParseRoundUpdate(f)
	if err != nil {
		t.Fatal(err)
	}

	full := uint64(1)<<nParts - 1
	if _, err := e.evalCoalition(u, full); err != nil { // warm the pool
		t.Fatal(err)
	}
	mask := uint64(0)
	avg := testing.AllocsPerRun(50, func() {
		mask = mask%full + 1 // cycle every non-empty coalition
		if _, err := e.evalCoalition(u, mask); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("evalCoalition allocates %.1f objects per call in steady state, want 0", avg)
	}
}
