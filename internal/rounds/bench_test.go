package rounds

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/protocol"
	"repro/internal/stats"
)

// benchWorld is a cheap synthetic setup: a small model, a 64-row eval set,
// and a deterministic generator of per-round participant updates. Benches
// measure engine arithmetic, not federated training.
type benchWorld struct {
	cfg    Config
	nParts int
	rng    func(round int) []protocol.RoundParticipant
}

func newBenchWorld(b *testing.B) *benchWorld {
	b.Helper()
	const width, nParts = 12, 6
	model, err := nn.New(width, nn.Config{Hidden: []int{8}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRNG(41)
	evalX := make([][]float64, 64)
	evalY := make([]int, len(evalX))
	for i := range evalX {
		row := make([]float64, width)
		for j := range row {
			row[j] = float64(r.Intn(2))
		}
		evalX[i] = row
		evalY[i] = r.Intn(2)
	}
	paramCount := len(model.Params())
	base := make([]float64, paramCount)
	for j := range base {
		base[j] = r.NormFloat64()
	}
	gen := func(round int) []protocol.RoundParticipant {
		pr := stats.NewRNG(int64(1000 + round))
		parts := make([]protocol.RoundParticipant, nParts)
		for i := range parts {
			params := make([]float64, paramCount)
			for j := range params {
				params[j] = base[j] + 0.1*pr.NormFloat64()
			}
			parts[i] = protocol.RoundParticipant{ID: i, Weight: float64(10 + i), Params: params}
		}
		return parts
	}
	return &benchWorld{
		cfg:    Config{Model: model, EvalX: evalX, EvalY: evalY, Seed: 5},
		nParts: nParts,
		rng:    gen,
	}
}

func benchUpdate(b *testing.B, round int, parts []protocol.RoundParticipant) protocol.RoundUpdate {
	b.Helper()
	frame, err := protocol.AppendRoundUpdate(nil, round, parts)
	if err != nil {
		b.Fatal(err)
	}
	f, _, err := protocol.ParseFrame(frame)
	if err != nil {
		b.Fatal(err)
	}
	u, err := protocol.ParseRoundUpdate(f)
	if err != nil {
		b.Fatal(err)
	}
	return u
}

func benchIngest(b *testing.B, e *Engine, u protocol.RoundUpdate) {
	b.Helper()
	out, err := e.Compute(u)
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Apply(out); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRoundIngest measures the steady-state cost of a converged
// stream: every round after the first moves the global utility by less
// than epsilon, so ingest is one grand-coalition reconstruction plus the
// between-round truncation check — the GTG fast path.
func BenchmarkRoundIngest(b *testing.B) {
	w := newBenchWorld(b)
	e, err := New(w.cfg)
	if err != nil {
		b.Fatal(err)
	}
	parts := w.rng(0)
	benchIngest(b, e, benchUpdate(b, 0, parts))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchIngest(b, e, benchUpdate(b, i+1, parts))
	}
	b.StopTimer()
	if snap := e.Snapshot(); snap.Skipped != b.N {
		b.Fatalf("expected every benched round skipped, got %d of %d", snap.Skipped, b.N)
	}
}

// BenchmarkIncrementalScores measures a full incremental score update: a
// round whose utility moved, so the engine runs truncated permutation
// sampling over reconstructed coalition models.
func BenchmarkIncrementalScores(b *testing.B) {
	w := newBenchWorld(b)
	w.cfg.Epsilon = -1 // never skip: every round pays the sampling path
	e, err := New(w.cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		u := benchUpdate(b, i, w.rng(i))
		b.StartTimer()
		benchIngest(b, e, u)
	}
}

// BenchmarkBatchRevaluation measures what a new round costs without the
// streaming engine: re-scoring the entire stream from scratch. With an
// 8-round history this is the bill the incremental path amortizes away —
// compare against BenchmarkIncrementalScores in BENCH_7.json.
func BenchmarkBatchRevaluation(b *testing.B) {
	const history = 8
	w := newBenchWorld(b)
	w.cfg.Epsilon = -1
	updates := make([]protocol.RoundUpdate, history)
	for i := range updates {
		updates[i] = benchUpdate(b, i, w.rng(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := New(w.cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, u := range updates {
			benchIngest(b, e, u)
		}
	}
}
