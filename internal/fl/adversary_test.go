package fl

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// snapshotTable deep-copies a table's instances so later mutation checks
// compare against genuinely independent memory.
func snapshotTable(t *dataset.Table) []dataset.Instance {
	out := make([]dataset.Instance, len(t.Instances))
	for i, in := range t.Instances {
		out[i] = dataset.Instance{Values: append([]float64(nil), in.Values...), Label: in.Label}
	}
	return out
}

func tablesEqual(a []dataset.Instance, b *dataset.Table) bool {
	if len(a) != len(b.Instances) {
		return false
	}
	for i := range a {
		if a[i].Label != b.Instances[i].Label || len(a[i].Values) != len(b.Instances[i].Values) {
			return false
		}
		for j := range a[i].Values {
			if a[i].Values[j] != b.Instances[i].Values[j] {
				return false
			}
		}
	}
	return true
}

func participantsEqual(a, b *Participant) bool {
	return a.ID == b.ID && a.Name == b.Name && tablesEqual(snapshotTable(a.Data), b.Data)
}

// The three data-space transforms must be pure functions of (input, seed):
// same seed twice → identical output, and the original participant's table
// is never touched (deep copy, values included).
func TestDataAttacksSeededDeterminismAndDeepCopy(t *testing.T) {
	base := &Participant{ID: 2, Name: "C", Data: dataset.TicTacToe().Subset(seq(60))}
	attacks := []struct {
		name string
		run  func(seed int64) *Participant
	}{
		{"replicate", func(seed int64) *Participant { return Replicate(base, 0.4, stats.NewRNG(seed)) }},
		{"low-quality", func(seed int64) *Participant { return InjectLowQuality(base, 0.4, stats.NewRNG(seed)) }},
		{"label-flip", func(seed int64) *Participant { return FlipLabels(base, 0.4, stats.NewRNG(seed)) }},
	}
	for _, a := range attacks {
		before := snapshotTable(base.Data)
		got1, got2 := a.run(11), a.run(11)
		if !participantsEqual(got1, got2) {
			t.Errorf("%s: same seed produced different participants", a.name)
		}
		got3 := a.run(12)
		if participantsEqual(got1, got3) {
			t.Errorf("%s: different seeds produced identical participants", a.name)
		}
		if !tablesEqual(before, base.Data) {
			t.Fatalf("%s: original participant data mutated", a.name)
		}
		// Mutating the attacked copy must not reach the original: the clone
		// has to be deep down to the feature vectors.
		if got1.Data.Len() > 0 && len(got1.Data.Instances[0].Values) > 0 {
			got1.Data.Instances[0].Values[0] += 100
			got1.Data.Instances[0].Label = 1 - got1.Data.Instances[0].Label
			if !tablesEqual(before, base.Data) {
				t.Fatalf("%s: attacked copy aliases the original's storage", a.name)
			}
		}
	}
}

// Ratio edge cases flow through sampleCount: 0 and negative select nothing,
// 1 and >1 select every row (clamped), and the transforms stay well-formed
// at the extremes.
func TestDataAttackRatioEdges(t *testing.T) {
	base := &Participant{ID: 0, Name: "A", Data: dataset.TicTacToe().Subset(seq(20))}

	for _, ratio := range []float64{0, -0.5} {
		if got := Replicate(base, ratio, stats.NewRNG(1)); got.Size() != base.Size() {
			t.Fatalf("Replicate(%v) size = %d, want unchanged %d", ratio, got.Size(), base.Size())
		}
		if got := FlipLabels(base, ratio, stats.NewRNG(1)); !tablesEqual(snapshotTable(base.Data), got.Data) {
			t.Fatalf("FlipLabels(%v) changed labels", ratio)
		}
		if got := InjectLowQuality(base, ratio, stats.NewRNG(1)); !tablesEqual(snapshotTable(base.Data), got.Data) {
			t.Fatalf("InjectLowQuality(%v) changed labels", ratio)
		}
	}

	for _, ratio := range []float64{1, 2.5} {
		if got := Replicate(base, ratio, stats.NewRNG(1)); got.Size() != 2*base.Size() {
			t.Fatalf("Replicate(%v) size = %d, want doubled %d", ratio, got.Size(), 2*base.Size())
		}
		flipped := FlipLabels(base, ratio, stats.NewRNG(1))
		for i := range flipped.Data.Instances {
			if flipped.Data.Instances[i].Label != 1-base.Data.Instances[i].Label {
				t.Fatalf("FlipLabels(%v) left row %d unflipped", ratio, i)
			}
		}
	}
}

func TestReplaceParticipantPanicsOnUnknownID(t *testing.T) {
	parts := []*Participant{{ID: 0, Name: "A"}, {ID: 1, Name: "B"}}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("ReplaceParticipant with an unmatched ID did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "no participant has ID 7") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	ReplaceParticipant(parts, &Participant{ID: 7, Name: "X"})
}

func TestFreeRiderModes(t *testing.T) {
	global := []float64{1, 2, 3, 4}
	trained := []float64{1.5, 1.5, 3.5, 3.5}

	zero := &FreeRider{Mode: FreeRideZero}
	p := append([]float64(nil), trained...)
	zero.Tamper(0, global, p)
	for i := range p {
		if p[i] != global[i] {
			t.Fatalf("zero free-rider upload differs from global at %d", i)
		}
	}

	stale := &FreeRider{Mode: FreeRideStale}
	p = append([]float64(nil), trained...)
	stale.Tamper(0, global, p)
	for i := range p {
		if p[i] != trained[i] {
			t.Fatal("stale free-rider must train honestly on its first round")
		}
	}
	p2 := []float64{9, 9, 9, 9}
	stale.Tamper(1, global, p2)
	for i := range p2 {
		if p2[i] != trained[i] {
			t.Fatal("stale free-rider must replay its first upload")
		}
	}

	noise := &FreeRider{Mode: FreeRideNoise, Std: 0.1, Seed: 5}
	p = append([]float64(nil), trained...)
	noise.Tamper(0, global, p)
	moved := 0
	for i := range p {
		if math.Abs(p[i]-global[i]) > 1 {
			t.Fatalf("noise free-rider drifted too far at %d: %v vs %v", i, p[i], global[i])
		}
		if p[i] != global[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("noise free-rider uploaded the global verbatim")
	}
}

// A tamper's randomness is a pure function of (Seed, round): same seed same
// round → identical draws (the collusion primitive), different rounds →
// fresh draws.
func TestTamperSeedDeterminismAndCollusion(t *testing.T) {
	global := make([]float64, 16)
	mk := func(seed int64) UpdateTamper { return &FreeRider{Mode: FreeRideNoise, Std: 0.1, Seed: seed} }

	group := Colluders(3, 42, mk)
	if len(group) != 3 {
		t.Fatalf("Colluders returned %d tampers", len(group))
	}
	ups := make([][]float64, len(group))
	for i, tam := range group {
		ups[i] = make([]float64, len(global))
		tam.Tamper(3, global, ups[i])
	}
	for i := 1; i < len(ups); i++ {
		for j := range ups[i] {
			if ups[i][j] != ups[0][j] {
				t.Fatal("colluders with a shared seed drew different noise")
			}
		}
	}

	lone := mk(43)
	indep := make([]float64, len(global))
	lone.Tamper(3, global, indep)
	same := true
	for j := range indep {
		if indep[j] != ups[0][j] {
			same = false
		}
	}
	if same {
		t.Fatal("independent seed reproduced the colluding group's draw")
	}

	again := make([]float64, len(global))
	mk(42).Tamper(4, global, again)
	same = true
	for j := range again {
		if again[j] != ups[0][j] {
			same = false
		}
	}
	if same {
		t.Fatal("round 4 reused round 3's noise draw")
	}
}

func TestScalingAndSignFlip(t *testing.T) {
	global := []float64{1, 1, 1}
	trained := []float64{1.5, 0.5, 1}

	p := append([]float64(nil), trained...)
	(&Scaling{Factor: 4}).Tamper(0, global, p)
	want := []float64{3, -1, 1}
	for i := range p {
		if math.Abs(p[i]-want[i]) > 1e-12 {
			t.Fatalf("scaling: got %v, want %v", p, want)
		}
	}

	p = append([]float64(nil), trained...)
	(&SignFlip{}).Tamper(0, global, p)
	want = []float64{0.5, 1.5, 1}
	for i := range p {
		if math.Abs(p[i]-want[i]) > 1e-12 {
			t.Fatalf("sign-flip: got %v, want %v", p, want)
		}
	}

	p = append([]float64(nil), trained...)
	(&SignFlip{Factor: 2}).Tamper(0, global, p)
	want = []float64{0, 2, 1}
	for i := range p {
		if math.Abs(p[i]-want[i]) > 1e-12 {
			t.Fatalf("sign-flip x2: got %v, want %v", p, want)
		}
	}
}
