package fl

import "math/rand"

// Update-space attacks: adversarial behaviours that tamper with the flat
// parameter vector a client uploads for aggregation, rather than with the
// client's training data. The data-space transforms in adversary.go model a
// participant whose *dataset* is bad; the tampers here model a participant
// whose dataset may be perfectly fine but whose *update* is hostile — the
// attack surface "On the Fragility of Contribution Score Computation in FL"
// (arXiv 2509.19921) studies. Batch valuation schemes that retrain
// coalitions from data are structurally blind to these (they never see the
// submitted update); only the streaming per-round engine, which scores the
// updates actually uploaded, can observe them.
//
// Determinism contract: a tamper's randomness is a pure function of
// (Seed, round). Two tampers constructed with the same Seed draw identical
// per-round streams — that seed sharing IS the collusion primitive: e.g.
// noise free-riders with independent seeds mostly cancel under FedAvg
// (variance shrinks ~1/k), while a colluding group sharing one seed pushes
// the same direction and adds coherently. Tampers are applied serially per
// round (fedsim's aggregation loop) and are not safe for concurrent use;
// the stale free-rider additionally carries per-round replay state.

// UpdateTamper rewrites one client's locally trained flat parameter vector
// in place before it is uploaded for aggregation. global is the round's
// starting global parameter vector (read-only — the point every client
// trained from), round the zero-based round number.
type UpdateTamper interface {
	Name() string
	Tamper(round int, global []float64, params []float64)
}

// tamperSeed derives the per-round RNG seed from a tamper seed
// (SplitMix64-style, mirroring the rounds engine's permSeed): draws for
// round t are independent of earlier rounds and identical across replays.
func tamperSeed(seed int64, round int) int64 {
	z := uint64(seed) + uint64(round+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// FreeRiderMode selects what a free-rider uploads instead of an honestly
// trained update.
type FreeRiderMode int

const (
	// FreeRideZero uploads the global parameters unchanged — a zero update
	// that contributes nothing while still claiming aggregation weight.
	FreeRideZero FreeRiderMode = iota
	// FreeRideStale trains honestly on the first round it participates in,
	// then replays that same (increasingly stale) upload forever.
	FreeRideStale
	// FreeRideNoise uploads the global parameters plus Gaussian noise —
	// fabricated "training" that costs the attacker nothing.
	FreeRideNoise
)

// FreeRider is the free-riding update tamper in one of three modes.
type FreeRider struct {
	Mode FreeRiderMode
	// Std is the noise standard deviation for FreeRideNoise (default 0.05).
	Std float64
	// Seed drives the noise stream; colluders share it (see package doc).
	Seed int64

	stale []float64 // FreeRideStale replay buffer
}

// Name implements UpdateTamper.
func (f *FreeRider) Name() string {
	switch f.Mode {
	case FreeRideStale:
		return "free-ride-stale"
	case FreeRideNoise:
		return "free-ride-noise"
	default:
		return "free-ride-zero"
	}
}

// Tamper implements UpdateTamper.
func (f *FreeRider) Tamper(round int, global, params []float64) {
	switch f.Mode {
	case FreeRideZero:
		copy(params, global)
	case FreeRideStale:
		if f.stale == nil {
			// First participation: keep the honestly trained update and
			// remember it; every later round replays it verbatim.
			f.stale = append([]float64(nil), params...)
			return
		}
		copy(params, f.stale)
	case FreeRideNoise:
		std := f.Std
		if std == 0 {
			std = 0.05
		}
		r := rand.New(rand.NewSource(tamperSeed(f.Seed, round)))
		for i := range params {
			params[i] = global[i] + std*r.NormFloat64()
		}
	}
}

// Scaling is the model-magnification attack: the honest local delta is
// amplified by Factor, letting one client dominate the weighted average
// (and, composed with a data attack, letting poisoned parameters overpower
// the honest majority).
type Scaling struct {
	// Factor multiplies the local update delta (params - global). 1 is a
	// no-op; the literature's boosting attacks use n/w-ish factors.
	Factor float64
}

// Name implements UpdateTamper.
func (s *Scaling) Name() string { return "scaling" }

// Tamper implements UpdateTamper.
func (s *Scaling) Tamper(round int, global, params []float64) {
	for i := range params {
		params[i] = global[i] + s.Factor*(params[i]-global[i])
	}
}

// SignFlip is directed model poisoning: the honest local delta is negated
// (and optionally magnified), steering the aggregate away from descent.
type SignFlip struct {
	// Factor magnifies the flipped delta; 0 means 1.
	Factor float64
}

// Name implements UpdateTamper.
func (s *SignFlip) Name() string { return "sign-flip" }

// Tamper implements UpdateTamper.
func (s *SignFlip) Tamper(round int, global, params []float64) {
	f := s.Factor
	if f == 0 {
		f = 1
	}
	for i := range params {
		params[i] = global[i] - f*(params[i]-global[i])
	}
}

// Colluders builds one tamper per group member, every one constructed from
// the same shared seed so their per-round random draws coincide (see the
// package doc on why coordinated noise survives averaging). mk builds one
// member's tamper from that seed.
func Colluders(n int, seed int64, mk func(seed int64) UpdateTamper) []UpdateTamper {
	out := make([]UpdateTamper, n)
	for i := range out {
		out[i] = mk(seed)
	}
	return out
}
