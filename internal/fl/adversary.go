package fl

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
)

// The adversarial transforms below return a *new* Participant with modified
// data (the original is untouched), matching the robustness protocol of
// Section VI-A: the experiment scores participant i before and after the
// modification and reports the relative contribution change.

// Replicate returns a copy of p whose data is augmented with duplicates of a
// ratio-sized random sample of its rows — the strategic "data replication"
// behaviour that inflates proportional allocation schemes.
func Replicate(p *Participant, ratio float64, r *rand.Rand) *Participant {
	data := p.Data.Clone()
	k := sampleCount(data.Len(), ratio)
	idx := r.Perm(data.Len())[:k]
	for _, i := range idx {
		vals := make([]float64, len(data.Instances[i].Values))
		copy(vals, data.Instances[i].Values)
		data.Instances = append(data.Instances, dataset.Instance{Values: vals, Label: data.Instances[i].Label})
	}
	return &Participant{ID: p.ID, Name: p.Name, Data: data}
}

// InjectLowQuality returns a copy of p in which a ratio-sized random sample
// of rows has its labels re-drawn from the participant's own label
// distribution — poorly annotated data that should lose credit.
func InjectLowQuality(p *Participant, ratio float64, r *rand.Rand) *Participant {
	data := p.Data.Clone()
	dist := p.LabelDistribution()
	k := sampleCount(data.Len(), ratio)
	idx := r.Perm(data.Len())[:k]
	for _, i := range idx {
		label := 0
		if r.Float64() < dist[1] {
			label = 1
		}
		data.Instances[i].Label = label
	}
	return &Participant{ID: p.ID, Name: p.Name, Data: data}
}

// FlipLabels returns a copy of p in which a ratio-sized random sample of
// rows has its labels flipped — the label-flipping poisoning attack.
func FlipLabels(p *Participant, ratio float64, r *rand.Rand) *Participant {
	data := p.Data.Clone()
	k := sampleCount(data.Len(), ratio)
	idx := r.Perm(data.Len())[:k]
	for _, i := range idx {
		data.Instances[i].Label = 1 - data.Instances[i].Label
	}
	return &Participant{ID: p.ID, Name: p.Name, Data: data}
}

// ReplaceParticipant returns a copy of parts with the participant whose ID
// matches repl.ID swapped for repl. It panics when no participant carries
// that ID: the callers are attack/robustness harnesses, where a typo'd ID
// silently returning an unmodified federation would void a whole attack
// cell and report a perfectly robust scheme that was never attacked.
func ReplaceParticipant(parts []*Participant, repl *Participant) []*Participant {
	out := make([]*Participant, len(parts))
	replaced := false
	for i, p := range parts {
		if p.ID == repl.ID {
			out[i] = repl
			replaced = true
		} else {
			out[i] = p
		}
	}
	if !replaced {
		panic(fmt.Sprintf("fl: ReplaceParticipant: no participant has ID %d", repl.ID))
	}
	return out
}

func sampleCount(n int, ratio float64) int {
	if ratio < 0 {
		ratio = 0
	}
	if ratio > 1 {
		ratio = 1
	}
	k := int(float64(n) * ratio)
	if k > n {
		k = n
	}
	return k
}
