package fl

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/stats"
)

func TestPairMaskDeterministicAndDistinct(t *testing.T) {
	a := pairMask(1, 0, 0, 1, 16)
	b := pairMask(1, 0, 0, 1, 16)
	for k := range a {
		if a[k] != b[k] {
			t.Fatal("pair mask not deterministic")
		}
	}
	c := pairMask(1, 1, 0, 1, 16) // different round
	d := pairMask(1, 0, 0, 2, 16) // different pair
	sameC, sameD := true, true
	for k := range a {
		if a[k] != c[k] {
			sameC = false
		}
		if a[k] != d[k] {
			sameD = false
		}
	}
	if sameC || sameD {
		t.Fatal("masks should differ across rounds and pairs")
	}
}

func TestMaskedAggregationCancels(t *testing.T) {
	f := func(seed int64) bool {
		r := stats.NewRNG(seed)
		n := 2 + r.Intn(6)
		dim := 1 + r.Intn(40)
		params := make([][]float64, n)
		weights := make([]float64, n)
		plain := make([]float64, dim)
		for i := 0; i < n; i++ {
			params[i] = make([]float64, dim)
			weights[i] = r.Float64()
			for k := 0; k < dim; k++ {
				params[i][k] = r.NormFloat64()
				plain[k] += weights[i] * params[i][k]
			}
		}
		uploads := make([][]float64, n)
		for i := 0; i < n; i++ {
			uploads[i] = MaskUpdate(params[i], weights[i], i, n, int(seed%7), seed)
		}
		masked := AggregateMasked(uploads)
		return maskingError(masked, plain) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMaskedUploadHidesUpdate(t *testing.T) {
	// A single masked upload must differ substantially from the raw update
	// (the server cannot read individual contributions).
	params := make([]float64, 32)
	for k := range params {
		params[k] = 0.5
	}
	up := MaskUpdate(params, 1, 0, 3, 0, 99)
	diff := 0.0
	for k := range params {
		diff += math.Abs(up[k] - params[k])
	}
	if diff/float64(len(params)) < 1 {
		t.Fatalf("masked upload too close to raw update (mean |diff| = %v)", diff/float64(len(params)))
	}
}

func TestAggregateMaskedEmpty(t *testing.T) {
	if AggregateMasked(nil) != nil {
		t.Fatal("empty aggregation should be nil")
	}
}

func TestSecureAggMatchesPlainTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	tab := dataset.TicTacToe()
	r := stats.NewRNG(8)
	train, test := tab.Split(r, 0.2)
	parts := PartitionSkewSample(train, 3, 2.0, r)
	enc, err := dataset.NewEncoder(tab.Schema, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(secure bool) float64 {
		tr := NewTrainer(enc, TrainConfig{
			Rounds: 2, LocalEpochs: 6, SecureAgg: secure, Seed: 4,
			Model: nn.Config{Hidden: []int{32}, Grafting: true, Seed: 7},
		})
		m, err := tr.Train(parts)
		if err != nil {
			t.Fatal(err)
		}
		return tr.Evaluate(m, test)
	}
	plain := mk(false)
	secure := mk(true)
	// Masking cancels up to float rounding; the binarized model is robust
	// to that, so accuracy should match closely.
	if math.Abs(plain-secure) > 0.05 {
		t.Fatalf("secure agg diverged: plain %v vs secure %v", plain, secure)
	}
}

func TestClientSampling(t *testing.T) {
	tab := dataset.TicTacToe()
	r := stats.NewRNG(9)
	train, _ := tab.Split(r, 0.2)
	parts := PartitionSkewSample(train, 6, 2.0, r)
	enc, err := dataset.NewEncoder(tab.Schema, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(enc, TrainConfig{ClientFraction: 0.5})
	sel := tr.sampleClients(parts, stats.NewRNG(2))
	if len(sel) != 3 {
		t.Fatalf("sampled %d clients, want 3", len(sel))
	}
	seen := map[int]bool{}
	for _, p := range sel {
		if seen[p.ID] {
			t.Fatal("client sampled twice")
		}
		seen[p.ID] = true
	}
	// Fraction 0 and 1 select everyone.
	trAll := NewTrainer(enc, TrainConfig{})
	if got := trAll.sampleClients(parts, stats.NewRNG(2)); len(got) != 6 {
		t.Fatalf("fraction 0 selected %d", len(got))
	}
	// Tiny fraction still selects at least one.
	trOne := NewTrainer(enc, TrainConfig{ClientFraction: 0.01})
	if got := trOne.sampleClients(parts, stats.NewRNG(2)); len(got) != 1 {
		t.Fatalf("tiny fraction selected %d", len(got))
	}
}

func TestClientSampledTrainingRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	tab := dataset.TicTacToe()
	r := stats.NewRNG(10)
	train, test := tab.Split(r, 0.2)
	parts := PartitionSkewSample(train, 6, 2.0, r)
	enc, err := dataset.NewEncoder(tab.Schema, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(enc, TrainConfig{
		Rounds: 4, LocalEpochs: 6, ClientFraction: 0.5, Seed: 3,
		Model: nn.Config{Hidden: []int{32}, Grafting: true, Seed: 7},
	})
	m, err := tr.Train(parts)
	if err != nil {
		t.Fatal(err)
	}
	if acc := tr.Evaluate(m, test); acc < 0.6 {
		t.Fatalf("sampled-client training accuracy %v too low", acc)
	}
}
