package fl

// Secure aggregation by pairwise additive masking — the standard
// cryptographic substrate the paper points at ("security protection
// techniques such as secret sharing can also be applied like in regular
// FL"). Each pair of clients (i, j) agrees on a shared mask vector m_ij;
// client i adds +m_ij and client j adds −m_ij to their parameter uploads,
// so individual updates are unreadable while the server's sum is exact.
// The simulation derives pair masks from a shared seed (standing in for a
// Diffie-Hellman agreement) and verifies bit-exact cancellation.

import (
	"math"
	"math/rand"
)

// maskScale bounds the magnitude of mask components. Masking is exact in
// real-number arithmetic; in float64 the masked sum differs from the plain
// sum by rounding noise proportional to the scale, so the scale stays
// moderate and AggregateMasked is verified against the unmasked sum in tests.
const maskScale = 100.0

// pairMask deterministically derives the mask vector shared by clients
// (i, j), i < j, for the given round.
func pairMask(seed int64, round, i, j, dim int) []float64 {
	r := rand.New(rand.NewSource(seed ^ int64(round)*1_000_003 ^ int64(i)*7919 ^ int64(j)*104729))
	m := make([]float64, dim)
	for k := range m {
		m[k] = (r.Float64()*2 - 1) * maskScale
	}
	return m
}

// MaskUpdate returns client idx's weighted parameter vector with all of its
// pairwise masks applied: +mask against higher-indexed clients, −mask
// against lower-indexed ones. n is the total client count this round.
func MaskUpdate(params []float64, weight float64, idx, n int, round int, seed int64) []float64 {
	out := make([]float64, len(params))
	for k, v := range params {
		out[k] = v * weight
	}
	for other := 0; other < n; other++ {
		if other == idx {
			continue
		}
		lo, hi := idx, other
		sign := 1.0
		if lo > hi {
			lo, hi = hi, lo
			sign = -1
		}
		m := pairMask(seed, round, lo, hi, len(params))
		for k := range out {
			out[k] += sign * m[k]
		}
	}
	return out
}

// AggregateMasked sums masked client uploads; the pairwise masks cancel and
// the result equals the weighted parameter sum (up to float rounding).
func AggregateMasked(uploads [][]float64) []float64 {
	if len(uploads) == 0 {
		return nil
	}
	sum := make([]float64, len(uploads[0]))
	for _, u := range uploads {
		for k, v := range u {
			sum[k] += v
		}
	}
	return sum
}

// maskingError returns the max absolute deviation between a masked
// aggregate and the plain weighted sum — exposed for tests and for the
// trainer's self-check.
func maskingError(masked, plain []float64) float64 {
	worst := 0.0
	for k := range masked {
		if d := math.Abs(masked[k] - plain[k]); d > worst {
			worst = d
		}
	}
	return worst
}
