// Package fl simulates horizontal federated learning: participants holding
// private shards of a common-schema dataset, the Dirichlet-skew partitioners
// of the paper's experimental setup (Section VI-A), the three adversarial
// behaviours the robustness study injects (data replication, low-quality
// labels, label flipping), and a FedAvg trainer over the logical neural
// networks of package nn.
package fl

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// Participant is one federated client with a private local dataset.
type Participant struct {
	ID   int
	Name string
	Data *dataset.Table
}

// Size returns the number of local training instances.
func (p *Participant) Size() int { return p.Data.Len() }

// LabelDistribution returns the participant's empirical label distribution
// as [P(y=0), P(y=1)].
func (p *Participant) LabelDistribution() [2]float64 {
	var c [2]float64
	for _, in := range p.Data.Instances {
		c[in.Label]++
	}
	n := float64(p.Data.Len())
	if n > 0 {
		c[0] /= n
		c[1] /= n
	}
	return c
}

// participantName produces the A, B, C, ... naming the paper's case studies use.
func participantName(i int) string {
	if i < 26 {
		return string(rune('A' + i))
	}
	return fmt.Sprintf("P%d", i)
}

// PartitionSkewSample splits the table across n participants with sizes
// drawn from a symmetric Dirichlet(alpha): the paper's "skew sample" case,
// where everyone shares the data distribution but holds different amounts.
// Every participant receives at least one instance.
func PartitionSkewSample(t *dataset.Table, n int, alpha float64, r *rand.Rand) []*Participant {
	if n < 1 {
		panic("fl: need at least one participant")
	}
	if t.Len() < n {
		panic(fmt.Sprintf("fl: cannot split %d instances across %d participants", t.Len(), n))
	}
	ratios := stats.Dirichlet(r, n, alpha)
	idx := r.Perm(t.Len())
	counts := apportion(ratios, t.Len(), 1)
	parts := make([]*Participant, n)
	at := 0
	for i := 0; i < n; i++ {
		parts[i] = &Participant{
			ID:   i,
			Name: participantName(i),
			Data: t.Subset(idx[at : at+counts[i]]),
		}
		at += counts[i]
	}
	return parts
}

// PartitionSkewLabel splits the table across n participants, drawing a
// separate Dirichlet(alpha) ratio vector for each class label: the paper's
// "skew label" case, where participants differ in label distribution as well
// as size. Every participant receives at least one instance overall.
func PartitionSkewLabel(t *dataset.Table, n int, alpha float64, r *rand.Rand) []*Participant {
	if n < 1 {
		panic("fl: need at least one participant")
	}
	byLabel := [2][]int{}
	for i, in := range t.Instances {
		byLabel[in.Label] = append(byLabel[in.Label], i)
	}
	assigned := make([][]int, n)
	for label := 0; label < 2; label++ {
		pool := byLabel[label]
		if len(pool) == 0 {
			continue
		}
		stats.Shuffle(r, pool)
		ratios := stats.Dirichlet(r, n, alpha)
		counts := apportion(ratios, len(pool), 0)
		at := 0
		for i := 0; i < n; i++ {
			assigned[i] = append(assigned[i], pool[at:at+counts[i]]...)
			at += counts[i]
		}
	}
	// Guarantee non-empty shards by stealing from the largest.
	for i := range assigned {
		if len(assigned[i]) > 0 {
			continue
		}
		largest := 0
		for j := range assigned {
			if len(assigned[j]) > len(assigned[largest]) {
				largest = j
			}
		}
		if len(assigned[largest]) < 2 {
			panic("fl: not enough data to give every participant an instance")
		}
		last := len(assigned[largest]) - 1
		assigned[i] = append(assigned[i], assigned[largest][last])
		assigned[largest] = assigned[largest][:last]
	}
	parts := make([]*Participant, n)
	for i := 0; i < n; i++ {
		parts[i] = &Participant{ID: i, Name: participantName(i), Data: t.Subset(assigned[i])}
	}
	return parts
}

// apportion converts fractional ratios into integer counts summing to total,
// giving every slot at least minEach (when feasible).
func apportion(ratios []float64, total, minEach int) []int {
	n := len(ratios)
	counts := make([]int, n)
	used := 0
	for i, f := range ratios {
		counts[i] = int(f * float64(total))
		used += counts[i]
	}
	// Distribute the remainder to the largest fractional parts (simple round
	// robin is fine given the downstream use).
	for i := 0; used < total; i = (i + 1) % n {
		counts[i]++
		used++
	}
	if minEach > 0 {
		for i := range counts {
			for counts[i] < minEach {
				// steal from the current maximum
				maxJ := 0
				for j := range counts {
					if counts[j] > counts[maxJ] {
						maxJ = j
					}
				}
				if counts[maxJ] <= minEach {
					panic("fl: cannot satisfy minimum shard size")
				}
				counts[maxJ]--
				counts[i]++
			}
		}
	}
	return counts
}

// Union concatenates the local datasets of the given participants.
func Union(parts []*Participant) *dataset.Table {
	tables := make([]*dataset.Table, len(parts))
	for i, p := range parts {
		tables[i] = p.Data
	}
	return dataset.Concat(tables...)
}
