package fl

import (
	"math"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/stats"
)

func TestPartitionSkewSample(t *testing.T) {
	tab := dataset.TicTacToe()
	r := stats.NewRNG(1)
	parts := PartitionSkewSample(tab, 8, 0.8, r)
	if len(parts) != 8 {
		t.Fatalf("got %d participants", len(parts))
	}
	total := 0
	seen := make(map[int]bool)
	for i, p := range parts {
		if p.Size() < 1 {
			t.Fatalf("participant %s empty", p.Name)
		}
		if p.ID != i {
			t.Fatalf("ID %d at slot %d", p.ID, i)
		}
		total += p.Size()
		for range p.Data.Instances {
			seen[len(seen)] = true
		}
	}
	if total != tab.Len() {
		t.Fatalf("partition loses rows: %d != %d", total, tab.Len())
	}
	if parts[0].Name != "A" || parts[1].Name != "B" {
		t.Fatalf("names = %s, %s", parts[0].Name, parts[1].Name)
	}
}

func TestPartitionSkewLabelDistributionsDiffer(t *testing.T) {
	tab := dataset.TicTacToe()
	r := stats.NewRNG(2)
	parts := PartitionSkewLabel(tab, 5, 0.3, r)
	total := 0
	var fracs []float64
	for _, p := range parts {
		if p.Size() == 0 {
			t.Fatalf("%s empty", p.Name)
		}
		total += p.Size()
		fracs = append(fracs, p.LabelDistribution()[1])
	}
	if total != tab.Len() {
		t.Fatalf("rows lost: %d != %d", total, tab.Len())
	}
	lo, hi := stats.MinMax(fracs)
	if hi-lo < 0.1 {
		t.Fatalf("skew-label at alpha=0.3 produced near-identical label fractions: %v", fracs)
	}
}

func TestPartitionPanics(t *testing.T) {
	tab := dataset.TicTacToe()
	r := stats.NewRNG(3)
	for _, fn := range []func(){
		func() { PartitionSkewSample(tab, 0, 1, r) },
		func() { PartitionSkewLabel(tab, 0, 1, r) },
		func() { PartitionSkewSample(tab.Subset([]int{0, 1}), 3, 1, r) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestApportion(t *testing.T) {
	counts := apportion([]float64{0.5, 0.3, 0.2}, 10, 1)
	sum := 0
	for _, c := range counts {
		if c < 1 {
			t.Fatalf("minEach violated: %v", counts)
		}
		sum += c
	}
	if sum != 10 {
		t.Fatalf("counts sum to %d", sum)
	}
	// Extreme skew with minimum enforcement.
	counts = apportion([]float64{0.999, 0.0005, 0.0005}, 5, 1)
	sum = 0
	for _, c := range counts {
		if c < 1 {
			t.Fatalf("minEach violated: %v", counts)
		}
		sum += c
	}
	if sum != 5 {
		t.Fatalf("counts sum to %d", sum)
	}
}

func TestLabelDistribution(t *testing.T) {
	tab := dataset.TicTacToe()
	p := &Participant{Data: tab}
	d := p.LabelDistribution()
	if math.Abs(d[0]+d[1]-1) > 1e-9 {
		t.Fatalf("distribution does not sum to 1: %v", d)
	}
	if math.Abs(d[1]-626.0/958.0) > 1e-9 {
		t.Fatalf("positive fraction = %v", d[1])
	}
}

func TestReplicate(t *testing.T) {
	tab := dataset.TicTacToe().Subset([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	p := &Participant{ID: 3, Name: "D", Data: tab}
	r := stats.NewRNG(4)
	rep := Replicate(p, 0.5, r)
	if rep.Size() != 15 {
		t.Fatalf("replicated size = %d, want 15", rep.Size())
	}
	if p.Size() != 10 {
		t.Fatal("original mutated")
	}
	if rep.ID != 3 || rep.Name != "D" {
		t.Fatal("identity lost")
	}
}

func TestInjectLowQualityChangesOnlyLabels(t *testing.T) {
	tab := dataset.TicTacToe().Subset(seq(100))
	p := &Participant{Data: tab}
	r := stats.NewRNG(5)
	lq := InjectLowQuality(p, 0.4, r)
	if lq.Size() != 100 {
		t.Fatalf("size changed: %d", lq.Size())
	}
	changed := 0
	for i := range lq.Data.Instances {
		for j := range lq.Data.Instances[i].Values {
			if lq.Data.Instances[i].Values[j] != p.Data.Instances[i].Values[j] {
				t.Fatal("features modified")
			}
		}
		if lq.Data.Instances[i].Label != p.Data.Instances[i].Label {
			changed++
		}
	}
	// 40 rows get labels re-drawn from the label distribution; roughly
	// half keep their original label by chance.
	if changed == 0 || changed > 40 {
		t.Fatalf("changed = %d, want in (0,40]", changed)
	}
}

func TestFlipLabels(t *testing.T) {
	tab := dataset.TicTacToe().Subset(seq(50))
	p := &Participant{Data: tab}
	r := stats.NewRNG(6)
	fl := FlipLabels(p, 0.2, r)
	changed := 0
	for i := range fl.Data.Instances {
		if fl.Data.Instances[i].Label != p.Data.Instances[i].Label {
			changed++
			if fl.Data.Instances[i].Label != 1-p.Data.Instances[i].Label {
				t.Fatal("flip produced invalid label")
			}
		}
	}
	if changed != 10 {
		t.Fatalf("flipped = %d, want exactly 10", changed)
	}
}

func TestReplaceParticipant(t *testing.T) {
	a := &Participant{ID: 0, Name: "A"}
	b := &Participant{ID: 1, Name: "B"}
	b2 := &Participant{ID: 1, Name: "B'"}
	out := ReplaceParticipant([]*Participant{a, b}, b2)
	if out[0] != a || out[1] != b2 {
		t.Fatal("replacement wrong")
	}
	if len(out) != 2 {
		t.Fatal("length changed")
	}
}

func TestSampleCountClamps(t *testing.T) {
	if sampleCount(10, -0.5) != 0 {
		t.Fatal("negative ratio should clamp to 0")
	}
	if sampleCount(10, 2.0) != 10 {
		t.Fatal("ratio > 1 should clamp to n")
	}
	if sampleCount(10, 0.35) != 3 {
		t.Fatal("ratio 0.35 of 10 should be 3")
	}
}

func TestUnion(t *testing.T) {
	tab := dataset.TicTacToe()
	r := stats.NewRNG(7)
	parts := PartitionSkewSample(tab, 4, 1, r)
	u := Union(parts)
	if u.Len() != tab.Len() {
		t.Fatalf("union size = %d, want %d", u.Len(), tab.Len())
	}
}

func TestFedAvgTrainsUsableModel(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	tab := dataset.TicTacToe()
	r := stats.NewRNG(8)
	train, test := tab.Split(r, 0.2)
	enc, err := dataset.NewEncoder(tab.Schema, 10, r)
	if err != nil {
		t.Fatal(err)
	}
	parts := PartitionSkewSample(train, 4, 1, r)
	tr := NewTrainer(enc, TrainConfig{
		Rounds:      3,
		LocalEpochs: 12,
		Parallel:    true,
		Model:       nn.Config{Hidden: []int{64}, Grafting: true, Seed: 7},
	})
	m, err := tr.Train(parts)
	if err != nil {
		t.Fatal(err)
	}
	acc := tr.Evaluate(m, test)
	t.Logf("FedAvg tic-tac-toe accuracy: %.3f", acc)
	if acc < 0.80 {
		t.Fatalf("FedAvg accuracy %.3f too low", acc)
	}
	// Single-participant training must also work (Individual baseline path).
	solo, err := tr.Train(parts[:1])
	if err != nil {
		t.Fatal(err)
	}
	if a := tr.Evaluate(solo, test); a < 0.5 {
		t.Fatalf("solo accuracy %.3f below majority", a)
	}
}

func TestTrainerErrors(t *testing.T) {
	tab := dataset.TicTacToe()
	enc, err := dataset.NewEncoder(tab.Schema, 5, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(enc, TrainConfig{})
	if _, err := tr.Train(nil); err == nil {
		t.Fatal("empty participant list should error")
	}
	empty := &Participant{ID: 0, Name: "A", Data: &dataset.Table{Schema: tab.Schema}}
	if _, err := tr.Train([]*Participant{empty}); err == nil {
		t.Fatal("empty participant data should error")
	}
}

func TestTrainerCacheReuse(t *testing.T) {
	tab := dataset.TicTacToe().Subset(seq(30))
	enc, err := dataset.NewEncoder(tab.Schema, 5, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(enc, TrainConfig{Rounds: 1, LocalEpochs: 1, Model: nn.Config{Hidden: []int{4}}})
	p := &Participant{ID: 0, Name: "A", Data: tab}
	e1 := tr.encodedData(p)
	e2 := tr.encodedData(p)
	if &e1.x[0][0] != &e2.x[0][0] {
		t.Fatal("encoded data not cached")
	}
}

func TestEncodedDataConcurrentDedup(t *testing.T) {
	tab := dataset.TicTacToe()
	enc, err := dataset.NewEncoder(tab.Schema, 5, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(enc, TrainConfig{Rounds: 1, LocalEpochs: 1, Model: nn.Config{Hidden: []int{4}}})
	p := &Participant{ID: 0, Name: "A", Data: tab}
	const callers = 32
	results := make([]encoded, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = tr.encodedData(p)
		}(i)
	}
	wg.Wait()
	if got := tr.encodes.Load(); got != 1 {
		t.Fatalf("%d concurrent callers ran %d encodes, want 1", callers, got)
	}
	for i := 1; i < callers; i++ {
		if &results[i].x[0][0] != &results[0].x[0][0] {
			t.Fatalf("caller %d got a different encoding", i)
		}
	}
}

func TestTrainConcurrentCoalitionsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	tab := dataset.TicTacToe().Subset(seq(200))
	r := stats.NewRNG(9)
	enc, err := dataset.NewEncoder(tab.Schema, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	parts := PartitionSkewSample(tab, 4, 1, r)
	tr := NewTrainer(enc, TrainConfig{
		Rounds: 1, LocalEpochs: 2, Parallel: true,
		Model: nn.Config{Hidden: []int{8}, Grafting: true, Seed: 3, BatchSize: 64},
	})
	coalitions := [][]*Participant{
		parts[:1], parts[:2], parts[1:3], parts,
	}
	// Sequential reference params per coalition, on a fresh trainer so the
	// concurrent run below starts from a cold encode cache too.
	ref := make([][]float64, len(coalitions))
	refTr := NewTrainer(enc, tr.Config())
	for i, c := range coalitions {
		m, err := refTr.Train(c)
		if err != nil {
			t.Fatal(err)
		}
		ref[i] = m.Params()
	}
	got := make([][]float64, len(coalitions))
	errs := make([]error, len(coalitions))
	var wg sync.WaitGroup
	for i, c := range coalitions {
		wg.Add(1)
		go func(i int, c []*Participant) {
			defer wg.Done()
			m, err := tr.Train(c)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = m.Params()
		}(i, c)
	}
	wg.Wait()
	for i := range coalitions {
		if errs[i] != nil {
			t.Fatalf("coalition %d: %v", i, errs[i])
		}
		if len(got[i]) != len(ref[i]) {
			t.Fatalf("coalition %d: %d params, want %d", i, len(got[i]), len(ref[i]))
		}
		for j := range got[i] {
			if got[i][j] != ref[i][j] {
				t.Fatalf("coalition %d param %d differs under concurrency: %v vs %v",
					i, j, got[i][j], ref[i][j])
			}
		}
	}
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
