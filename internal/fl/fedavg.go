package fl

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/nn"
)

// TrainConfig controls the FedAvg orchestration.
type TrainConfig struct {
	// Rounds of server aggregation. Default 4.
	Rounds int
	// LocalEpochs each client trains per round. Default 15.
	LocalEpochs int
	// Model is the shared logical-network configuration (Epochs inside is
	// ignored; LocalEpochs governs training length).
	Model nn.Config
	// Parallel trains clients of one round concurrently. FedAvg semantics
	// are identical either way; this is a wall-clock optimization.
	Parallel bool
	// ClientFraction samples a subset of clients each round (FedAvg's C
	// parameter). 0 or >= 1 means every client participates every round.
	ClientFraction float64
	// SecureAgg aggregates client updates through pairwise additive masking
	// (see secagg.go): the server only ever sees masked uploads whose masks
	// cancel in the sum. Results match plain aggregation to float rounding.
	SecureAgg bool
	// Seed drives client sampling and mask derivation.
	Seed int64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Rounds == 0 {
		c.Rounds = 4
	}
	if c.LocalEpochs == 0 {
		c.LocalEpochs = 15
	}
	return c
}

// Trainer runs FedAvg over participants using a fixed encoder (the
// federation-agreed predicate encoding). It caches each participant's
// encoded data by pointer identity, so repeated coalition training (the
// baselines' hot loop) does not re-encode. Trainer is safe for concurrent
// use: Train carries no cross-call mutable state beyond this cache, and the
// cache deduplicates in-flight encodes (two goroutines training coalitions
// that share a participant encode it once; the second waits).
type Trainer struct {
	enc *dataset.Encoder
	cfg TrainConfig

	mu    sync.Mutex
	cache map[*Participant]*encodeEntry
	// encodes counts distinct EncodeTable executions; tests pin it to the
	// participant count to prove the in-flight dedup works.
	encodes atomic.Int64
}

type encoded struct {
	x [][]float64
	y []int
}

// encodeEntry is one participant's encode slot: the sync.Once is the
// in-flight dedup (first goroutine encodes, concurrent ones block until the
// result is published).
type encodeEntry struct {
	once sync.Once
	e    encoded
}

// NewTrainer creates a FedAvg trainer bound to an encoder.
func NewTrainer(enc *dataset.Encoder, cfg TrainConfig) *Trainer {
	return &Trainer{enc: enc, cfg: cfg.withDefaults(), cache: make(map[*Participant]*encodeEntry)}
}

// Encoder returns the federation's shared encoder.
func (tr *Trainer) Encoder() *dataset.Encoder { return tr.enc }

// Config returns the training configuration in effect.
func (tr *Trainer) Config() TrainConfig { return tr.cfg }

// encodedData returns (and caches) the encoded form of p's local data.
// Concurrent callers for the same participant encode once: the entry is
// claimed under the lock, the (expensive) encode runs outside it, and
// late arrivals block in once.Do until the result is published.
func (tr *Trainer) encodedData(p *Participant) encoded {
	tr.mu.Lock()
	ent, ok := tr.cache[p]
	if !ok {
		ent = &encodeEntry{}
		tr.cache[p] = ent
	}
	tr.mu.Unlock()
	ent.once.Do(func() {
		x, y := tr.enc.EncodeTable(p.Data)
		ent.e = encoded{x: x, y: y}
		tr.encodes.Add(1)
	})
	return ent.e
}

// Train runs FedAvg over the given participants and returns the final global
// model. Per the FedAvg algorithm the server averages client parameter
// vectors weighted by local dataset size each round. An empty participant
// list is an error.
func (tr *Trainer) Train(parts []*Participant) (*nn.Model, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("fl: Train needs at least one participant")
	}
	global, err := nn.New(tr.enc.Width(), tr.cfg.Model)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		if p.Size() == 0 {
			return nil, fmt.Errorf("fl: participant %s has no data", p.Name)
		}
		total += p.Size()
	}

	// Round-level model selection: FedAvg over binarized logical networks
	// can regress when averaging pushes weights across the 0.5 threshold, so
	// the server keeps the aggregated snapshot with the best (size-weighted)
	// training accuracy across rounds. Only already-uploaded client data
	// encodings are consulted — no extra information leaves the clients.
	bestAcc := -1.0
	var bestParams []float64
	snapshot := func() {
		correct := 0
		for _, p := range parts {
			e := tr.encodedData(p)
			pred := global.PredictBatch(e.x)
			for i, y := range e.y {
				if pred[i] == y {
					correct++
				}
			}
		}
		if acc := float64(correct) / float64(total); acc > bestAcc {
			bestAcc = acc
			bestParams = global.Params()
		}
	}

	sampler := rand.New(rand.NewSource(tr.cfg.Seed + 4242))
	for round := 0; round < tr.cfg.Rounds; round++ {
		selected := tr.sampleClients(parts, sampler)
		selTotal := 0
		for _, p := range selected {
			selTotal += p.Size()
		}
		uploads := make([][]float64, len(selected))
		trainOne := func(idx int, p *Participant) {
			local := global.Clone()
			e := tr.encodedData(p)
			local.TrainEpochs(e.x, e.y, tr.cfg.LocalEpochs)
			w := float64(p.Size()) / float64(selTotal)
			lp := local.Params()
			if tr.cfg.SecureAgg {
				uploads[idx] = MaskUpdate(lp, w, idx, len(selected), round, tr.cfg.Seed)
				return
			}
			for i := range lp {
				lp[i] *= w
			}
			uploads[idx] = lp
		}
		if tr.cfg.Parallel {
			var wg sync.WaitGroup
			for idx, p := range selected {
				wg.Add(1)
				go func(idx int, p *Participant) {
					defer wg.Done()
					trainOne(idx, p)
				}(idx, p)
			}
			wg.Wait()
		} else {
			for idx, p := range selected {
				trainOne(idx, p)
			}
		}
		if err := global.SetParams(AggregateMasked(uploads)); err != nil {
			return nil, err
		}
		snapshot()
	}
	if bestParams != nil {
		if err := global.SetParams(bestParams); err != nil {
			return nil, err
		}
	}
	return global, nil
}

// sampleClients returns the round's participating clients: all of them when
// ClientFraction is 0 or >= 1, otherwise a uniform sample of
// max(1, round(C*n)) clients.
func (tr *Trainer) sampleClients(parts []*Participant, r *rand.Rand) []*Participant {
	c := tr.cfg.ClientFraction
	if c <= 0 || c >= 1 {
		return parts
	}
	k := int(c*float64(len(parts)) + 0.5)
	if k < 1 {
		k = 1
	}
	idx := r.Perm(len(parts))[:k]
	out := make([]*Participant, k)
	for i, j := range idx {
		out[i] = parts[j]
	}
	return out
}

// Evaluate returns the model's test accuracy on tab under the trainer's
// encoder — the paper's data utility metric v (Eq. 1).
func (tr *Trainer) Evaluate(m *nn.Model, tab *dataset.Table) float64 {
	x, y := tr.enc.EncodeTable(tab)
	return m.Accuracy(x, y)
}
