package telemetry

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
)

type loggerCtxKey struct{}

// WithLogger stamps a request-scoped logger into the context.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, loggerCtxKey{}, l)
}

// LoggerFrom returns the context's logger, falling back to fallback and
// then slog.Default. The result is never nil.
func LoggerFrom(ctx context.Context, fallback *slog.Logger) *slog.Logger {
	if l, ok := ctx.Value(loggerCtxKey{}).(*slog.Logger); ok {
		return l
	}
	if fallback != nil {
		return fallback
	}
	return slog.Default()
}

// logfHandler adapts a printf-style sink to slog.Handler — the
// compatibility shim that lets legacy Logf options (server, store, tests
// passing t.Logf) receive the unified structured log stream.
type logfHandler struct {
	logf  func(format string, args ...any)
	attrs string // pre-rendered " k=v" pairs from WithAttrs
	group string
}

// LogfLogger wraps a printf-style function as a *slog.Logger. Records
// render as "LEVEL msg k=v k=v". A nil logf yields slog.Default().
func LogfLogger(logf func(format string, args ...any)) *slog.Logger {
	if logf == nil {
		return slog.Default()
	}
	return slog.New(&logfHandler{logf: logf})
}

func (h *logfHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Level.String())
	b.WriteByte(' ')
	b.WriteString(r.Message)
	b.WriteString(h.attrs)
	r.Attrs(func(a slog.Attr) bool {
		writeAttr(&b, h.group, a)
		return true
	})
	h.logf("%s", b.String())
	return nil
}

func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	var b strings.Builder
	b.WriteString(h.attrs)
	for _, a := range attrs {
		writeAttr(&b, h.group, a)
	}
	return &logfHandler{logf: h.logf, attrs: b.String(), group: h.group}
}

func (h *logfHandler) WithGroup(name string) slog.Handler {
	g := name
	if h.group != "" {
		g = h.group + "." + name
	}
	return &logfHandler{logf: h.logf, attrs: h.attrs, group: g}
}

func writeAttr(b *strings.Builder, group string, a slog.Attr) {
	if a.Equal(slog.Attr{}) {
		return
	}
	b.WriteByte(' ')
	if group != "" {
		b.WriteString(group)
		b.WriteByte('.')
	}
	b.WriteString(a.Key)
	b.WriteByte('=')
	fmt.Fprintf(b, "%v", a.Value.Resolve().Any())
}
