package telemetry

// Process runtime metrics: goroutine count, heap, GC activity, uptime,
// and open file descriptors, refreshed on demand (every /metrics scrape,
// /v1/stats read, and debug-bundle capture) rather than by a background
// poller — a scraped gauge that is seconds stale is useless, and a poller
// would burn cycles when nobody is looking.

import (
	"os"
	"runtime"
	"time"
)

// RuntimeStats owns the process-level gauges.
type RuntimeStats struct {
	start time.Time

	goroutines *Gauge
	heapAlloc  *Gauge
	heapSys    *Gauge
	gcPause    *Gauge
	gcCycles   *Gauge
	uptime     *Gauge
	openFDs    *Gauge
}

// NewRuntimeStats registers the process gauge family in reg. start is the
// process (or server) start time uptime is measured from.
func NewRuntimeStats(reg *Registry, start time.Time) *RuntimeStats {
	return &RuntimeStats{
		start:      start,
		goroutines: reg.Gauge("ctfl_process_goroutines", "Live goroutines."),
		heapAlloc:  reg.Gauge("ctfl_process_heap_alloc_bytes", "Bytes of allocated heap objects."),
		heapSys:    reg.Gauge("ctfl_process_heap_sys_bytes", "Bytes of heap obtained from the OS."),
		gcPause:    reg.Gauge("ctfl_process_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time."),
		gcCycles:   reg.Gauge("ctfl_process_gc_cycles_total", "Completed GC cycles."),
		uptime:     reg.Gauge("ctfl_process_uptime_seconds", "Seconds since the server started."),
		openFDs:    reg.Gauge("ctfl_process_open_fds", "Open file descriptors (-1 where /proc is unavailable)."),
	}
}

// Collect refreshes every process gauge. Nil-safe.
func (s *RuntimeStats) Collect() {
	if s == nil {
		return
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	s.goroutines.Set(float64(runtime.NumGoroutine()))
	s.heapAlloc.Set(float64(m.HeapAlloc))
	s.heapSys.Set(float64(m.HeapSys))
	s.gcPause.Set(float64(m.PauseTotalNs) / 1e9)
	s.gcCycles.Set(float64(m.NumGC))
	s.uptime.Set(time.Since(s.start).Seconds())
	s.openFDs.Set(float64(countOpenFDs()))
}

// countOpenFDs counts /proc/self/fd entries; -1 on platforms without a
// procfs (the gauge stays present so dashboards keep a stable shape).
func countOpenFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}
