package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Span is one timed operation in a hierarchical trace. Spans are created
// with StartSpan and closed with End; children attach to the span carried
// by the context. All methods are nil-safe, so un-instrumented call paths
// (no SpanLog in the context) cost a pointer check and nothing else.
type Span struct {
	name  string
	start time.Time
	log   *SpanLog // root spans only: where the finished tree is published
	lim   *SpanLog // every span: ring policy (child cap, eviction counter)

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
	dropped  int // children evicted once the per-span cap was hit
}

// Attr is one span attribute.
type Attr struct {
	Key   string
	Value any
}

type spanCtxKey struct{}
type spanLogCtxKey struct{}
type requestIDCtxKey struct{}

// WithSpanLog arms a context for tracing: root spans started beneath it
// publish their finished trees into l.
func WithSpanLog(ctx context.Context, l *SpanLog) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, spanLogCtxKey{}, l)
}

// StartSpan opens a span named name. If the context already carries a
// span, the new one is attached as its child; otherwise it becomes a root
// that will publish to the context's SpanLog on End. Without either, the
// context is returned unchanged with a nil span — tracing disabled.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanCtxKey{}).(*Span)
	var log *SpanLog
	if parent == nil {
		log, _ = ctx.Value(spanLogCtxKey{}).(*SpanLog)
		if log == nil {
			return ctx, nil
		}
	}
	s := &Span{name: name, start: time.Now(), log: log}
	if parent != nil {
		s.lim = parent.lim
		parent.addChild(s)
	} else {
		s.lim = log
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// addChild attaches c, enforcing the per-span child cap: once a span
// holds maxChildren children the oldest is evicted ring-style, keeping
// the most recent activity (the part an operator debugging a stuck
// request wants) while bounding a long-lived root's memory.
func (s *Span) addChild(c *Span) {
	max := s.lim.maxChildrenCap()
	s.mu.Lock()
	if len(s.children) >= max {
		copy(s.children, s.children[1:])
		s.children[len(s.children)-1] = c
		s.dropped++
		s.mu.Unlock()
		s.lim.countEviction()
		return
	}
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// SetAttr records a key/value attribute on the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End closes the span, fixing its duration. Root spans publish their tree
// to the SpanLog they were started under. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	s.mu.Unlock()
	if s.log != nil {
		s.log.add(s)
	}
}

// SpanView is the JSON shape of one span in a recorded trace tree.
// DroppedChildren counts children evicted by the per-span ring cap; when
// it is non-zero, Children holds only the newest ones.
type SpanView struct {
	Name            string         `json:"name"`
	Start           time.Time      `json:"start"`
	DurationMS      float64        `json:"duration_ms"`
	Attrs           map[string]any `json:"attrs,omitempty"`
	Children        []SpanView     `json:"children,omitempty"`
	DroppedChildren int            `json:"dropped_children,omitempty"`
}

// view snapshots the span subtree. Children that are still running (an
// async child outliving its root) appear with their duration so far.
func (s *Span) view() SpanView {
	s.mu.Lock()
	v := SpanView{Name: s.name, Start: s.start}
	if s.ended {
		v.DurationMS = float64(s.dur) / float64(time.Millisecond)
	} else {
		v.DurationMS = float64(time.Since(s.start)) / float64(time.Millisecond)
	}
	if len(s.attrs) > 0 {
		v.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			v.Attrs[a.Key] = a.Value
		}
	}
	v.DroppedChildren = s.dropped
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		v.Children = append(v.Children, c.view())
	}
	return v
}

// DefaultMaxChildren is the per-span child cap applied by SpanLog unless
// overridden with SetMaxChildren.
const DefaultMaxChildren = 128

// SpanLog is a bounded ring buffer of recently finished root spans. It
// also carries the ring policy every span under it inherits: a per-span
// child cap (the same bounded-ring discipline as the root buffer) and an
// optional eviction counter.
type SpanLog struct {
	mu          sync.Mutex
	buf         []*Span
	next        int
	total       int64
	maxChildren int
	evicted     *Counter
}

// NewSpanLog returns a ring buffer holding the most recent capacity root
// spans (default 64 when capacity <= 0).
func NewSpanLog(capacity int) *SpanLog {
	if capacity <= 0 {
		capacity = 64
	}
	return &SpanLog{buf: make([]*Span, capacity), maxChildren: DefaultMaxChildren}
}

// SetMaxChildren overrides the per-span child cap (n <= 0 restores the
// default).
func (l *SpanLog) SetMaxChildren(n int) {
	if n <= 0 {
		n = DefaultMaxChildren
	}
	l.mu.Lock()
	l.maxChildren = n
	l.mu.Unlock()
}

// SetEvictionCounter wires a counter incremented once per evicted child
// span.
func (l *SpanLog) SetEvictionCounter(c *Counter) {
	l.mu.Lock()
	l.evicted = c
	l.mu.Unlock()
}

func (l *SpanLog) maxChildrenCap() int {
	if l == nil {
		return DefaultMaxChildren
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.maxChildren <= 0 {
		return DefaultMaxChildren
	}
	return l.maxChildren
}

func (l *SpanLog) countEviction() {
	if l == nil {
		return
	}
	l.mu.Lock()
	c := l.evicted
	l.mu.Unlock()
	c.Inc()
}

func (l *SpanLog) add(s *Span) {
	l.mu.Lock()
	l.buf[l.next] = s
	l.next = (l.next + 1) % len(l.buf)
	l.total++
	l.mu.Unlock()
}

// Total reports how many root spans have ever been recorded.
func (l *SpanLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Recent returns up to n recent trace trees, newest first (n <= 0 means
// everything retained).
func (l *SpanLog) Recent(n int) []SpanView {
	l.mu.Lock()
	var roots []*Span
	for i := 1; i <= len(l.buf); i++ {
		s := l.buf[(l.next-i+len(l.buf))%len(l.buf)]
		if s == nil {
			break
		}
		roots = append(roots, s)
		if n > 0 && len(roots) == n {
			break
		}
	}
	l.mu.Unlock()
	out := make([]SpanView, 0, len(roots))
	for _, s := range roots {
		out = append(out, s.view())
	}
	return out
}

// NewRequestID returns a 16-hex-char random request identifier.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a fixed id
		// keeps telemetry non-fatal.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID stamps a request identifier into the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDCtxKey{}, id)
}

// RequestIDFrom returns the context's request id, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDCtxKey{}).(string)
	return id
}
