package telemetry

// Multi-window burn-rate SLO evaluation.
//
// An objective declares a target good-fraction (say 99.9% of requests
// under 250ms) and is evaluated the way SRE alerting does it: the error
// budget burn rate — observed bad fraction divided by the budget
// (1 − target) — is computed over a short and a long window, and the
// objective breaches only when BOTH windows burn too fast. The fast
// window makes detection quick; the slow window keeps one spike from
// tripping it. Clearing is hysteretic: both windows must drop below half
// their trip thresholds, so a breach does not flap at the boundary.
//
// Sources are cumulative: each Sample() reports (total, bad) counts since
// process start, and windows are differences between retained samples.
// Time is injected through Tick(now), so tests drive a fake clock.

import (
	"fmt"
	"sync"
	"time"
)

// SLOSource feeds an objective. Sample reports cumulative event counts:
// total observations and how many were bad. Implementations must be
// monotonic (a later Sample never reports smaller values).
type SLOSource interface {
	Sample() (total, bad int64)
}

// CounterSLOSource derives an objective from two counters (e.g. all HTTP
// responses vs 5xx responses).
type CounterSLOSource struct {
	Total *Counter
	Bad   *Counter
}

// Sample implements SLOSource.
func (s CounterSLOSource) Sample() (int64, int64) {
	return s.Total.Value(), s.Bad.Value()
}

// HistogramSLOSource derives an objective from a latency histogram: an
// observation is bad when it lands in a bucket whose upper bound exceeds
// Bound (seconds). Bound should sit on a bucket boundary; it is rounded
// up to one otherwise.
type HistogramSLOSource struct {
	H     *Histogram
	Bound float64
}

// Sample implements SLOSource.
func (s HistogramSLOSource) Sample() (int64, int64) {
	return s.H.CountOver(s.Bound)
}

// GaugeSLOSource derives an objective from a level signal: each Sample
// counts one observation, bad when the gauge is above Bound at sampling
// time (e.g. score staleness in seconds). It accumulates its own totals,
// so one value must feed exactly one objective.
type GaugeSLOSource struct {
	G     *Gauge
	Bound float64

	total int64
	bad   int64
}

// Sample implements SLOSource.
func (s *GaugeSLOSource) Sample() (int64, int64) {
	s.total++
	if s.G.Value() > s.Bound {
		s.bad++
	}
	return s.total, s.bad
}

// SLOConfig declares one objective.
type SLOConfig struct {
	// Name labels the objective's metric families; required and unique.
	Name string
	// Target is the good fraction promised, in (0, 1); 1−Target is the
	// error budget. Default 0.99.
	Target float64
	// FastWindow / SlowWindow are the two burn windows. Defaults 1m / 10m.
	FastWindow time.Duration
	SlowWindow time.Duration
	// FastBurn / SlowBurn are the trip thresholds per window. Defaults
	// 14.4 / 6 (the classic page-severity pairing, scaled to the short
	// windows a single node cares about).
	FastBurn float64
	SlowBurn float64
	// Source feeds the objective; required.
	Source SLOSource
}

// sloSample is one retained cumulative observation.
type sloSample struct {
	at         time.Time
	total, bad int64
}

// objective is one declared SLO plus its window state and instruments.
type objective struct {
	cfg      SLOConfig
	ring     []sloSample // time-ascending, trimmed to SlowWindow
	breached bool

	fastGauge *Gauge
	slowGauge *Gauge
	breachG   *Gauge
	breachesC *Counter
}

// SLOTransition reports one objective changing breach state during a Tick.
type SLOTransition struct {
	Name     string
	Breached bool
}

// SLOStatus is the JSON shape of one objective in /v1/stats and the debug
// bundle.
type SLOStatus struct {
	Name     string  `json:"name"`
	Target   float64 `json:"target"`
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	Breached bool    `json:"breached"`
	Breaches int64   `json:"breaches"`
}

// SLOEvaluator owns a set of objectives and re-evaluates them on Tick.
// All methods are nil-safe and safe for concurrent use.
type SLOEvaluator struct {
	mu   sync.Mutex
	reg  *Registry
	objs []*objective
}

// NewSLOEvaluator returns an evaluator exporting per-objective metric
// families into reg.
func NewSLOEvaluator(reg *Registry) *SLOEvaluator {
	return &SLOEvaluator{reg: reg}
}

// Add declares an objective. Zero config fields take the documented
// defaults; a nil Source or duplicate name panics (registration bug, not
// a runtime condition).
func (e *SLOEvaluator) Add(cfg SLOConfig) {
	if cfg.Source == nil {
		panic("telemetry: SLO objective without a source")
	}
	if cfg.Target <= 0 || cfg.Target >= 1 {
		cfg.Target = 0.99
	}
	if cfg.FastWindow <= 0 {
		cfg.FastWindow = time.Minute
	}
	if cfg.SlowWindow <= 0 {
		cfg.SlowWindow = 10 * time.Minute
	}
	if cfg.FastBurn <= 0 {
		cfg.FastBurn = 14.4
	}
	if cfg.SlowBurn <= 0 {
		cfg.SlowBurn = 6
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, o := range e.objs {
		if o.cfg.Name == cfg.Name {
			panic(fmt.Sprintf("telemetry: SLO objective %q declared twice", cfg.Name))
		}
	}
	o := &objective{cfg: cfg}
	if e.reg != nil {
		o.fastGauge = e.reg.Gauge(
			fmt.Sprintf("ctfl_slo_burn_rate{slo=%q,window=\"fast\"}", cfg.Name),
			"Error-budget burn rate per objective and window.")
		o.slowGauge = e.reg.Gauge(
			fmt.Sprintf("ctfl_slo_burn_rate{slo=%q,window=\"slow\"}", cfg.Name),
			"Error-budget burn rate per objective and window.")
		o.breachG = e.reg.Gauge(
			fmt.Sprintf("ctfl_slo_breach{slo=%q}", cfg.Name),
			"1 while the objective is in breach, else 0.")
		o.breachesC = e.reg.Counter(
			fmt.Sprintf("ctfl_slo_breaches_total{slo=%q}", cfg.Name),
			"Times the objective entered breach.")
	}
	e.objs = append(e.objs, o)
}

// burnOver computes the burn rate over the trailing window ending at the
// newest sample. With fewer than two samples in the window (or no events)
// the burn is 0.
func (o *objective) burnOver(window time.Duration) float64 {
	if len(o.ring) < 2 {
		return 0
	}
	newest := o.ring[len(o.ring)-1]
	cutoff := newest.at.Add(-window)
	base := o.ring[0]
	for _, s := range o.ring[:len(o.ring)-1] {
		if s.at.After(cutoff) {
			break
		}
		base = s
	}
	totalD := newest.total - base.total
	badD := newest.bad - base.bad
	if totalD <= 0 || badD <= 0 {
		return 0
	}
	budget := 1 - o.cfg.Target
	return (float64(badD) / float64(totalD)) / budget
}

// Tick samples every objective at now, updates burn gauges, and returns
// the objectives that changed breach state (breaches tripping or
// clearing) this tick.
func (e *SLOEvaluator) Tick(now time.Time) []SLOTransition {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var changed []SLOTransition
	for _, o := range e.objs {
		total, bad := o.cfg.Source.Sample()
		o.ring = append(o.ring, sloSample{at: now, total: total, bad: bad})
		// Trim to the slow window, always keeping one sample at or before
		// the cutoff as the differencing base.
		cutoff := now.Add(-o.cfg.SlowWindow)
		drop := 0
		for drop < len(o.ring)-1 && !o.ring[drop+1].at.After(cutoff) {
			drop++
		}
		if drop > 0 {
			o.ring = append(o.ring[:0], o.ring[drop:]...)
		}

		fast := o.burnOver(o.cfg.FastWindow)
		slow := o.burnOver(o.cfg.SlowWindow)
		o.fastGauge.Set(fast)
		o.slowGauge.Set(slow)

		was := o.breached
		if !was && fast >= o.cfg.FastBurn && slow >= o.cfg.SlowBurn {
			o.breached = true
			o.breachesC.Inc()
		} else if was && fast < o.cfg.FastBurn/2 && slow < o.cfg.SlowBurn/2 {
			o.breached = false
		}
		if o.breached {
			o.breachG.Set(1)
		} else {
			o.breachG.Set(0)
		}
		if o.breached != was {
			changed = append(changed, SLOTransition{Name: o.cfg.Name, Breached: o.breached})
		}
	}
	return changed
}

// Breached reports whether the named objective is currently in breach.
func (e *SLOEvaluator) Breached(name string) bool {
	if e == nil {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, o := range e.objs {
		if o.cfg.Name == name {
			return o.breached
		}
	}
	return false
}

// Reset clears the named objective's window and breach state. The
// degraded-mode controller calls this when an external health probe has
// positively verified recovery: the retained bad samples predate the
// probe, so keeping them would re-trip a breach the probe just disproved.
func (e *SLOEvaluator) Reset(name string) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, o := range e.objs {
		if o.cfg.Name != name {
			continue
		}
		o.ring = o.ring[:0]
		o.breached = false
		o.fastGauge.Set(0)
		o.slowGauge.Set(0)
		o.breachG.Set(0)
		return
	}
}

// Snapshot reports every objective's current status, in declaration
// order.
func (e *SLOEvaluator) Snapshot() []SLOStatus {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SLOStatus, 0, len(e.objs))
	for _, o := range e.objs {
		out = append(out, SLOStatus{
			Name:     o.cfg.Name,
			Target:   o.cfg.Target,
			FastBurn: o.fastGauge.Value(),
			SlowBurn: o.slowGauge.Value(),
			Breached: o.breached,
			Breaches: o.breachesC.Value(),
		})
	}
	return out
}
