package telemetry

// Satellite coverage for ISSUE 8: SpanLog ring wraparound under
// concurrent writers, the per-span child cap, histogram quantile edge
// cases, CountOver, and the process runtime gauges.

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func TestSpanLogWraparoundConcurrent(t *testing.T) {
	const cap, writers, perWriter = 16, 8, 200
	l := NewSpanLog(cap)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				ctx := WithSpanLog(context.Background(), l)
				ctx, root := StartSpan(ctx, fmt.Sprintf("root-%d-%d", w, i))
				_, child := StartSpan(ctx, "child")
				child.End()
				root.End()
			}
		}(w)
	}
	// Readers race the writers across many wraparounds.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, v := range l.Recent(0) {
				if v.Name == "" {
					t.Error("empty span name in recent trace")
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if got := l.Total(); got != writers*perWriter {
		t.Fatalf("total = %d, want %d", got, writers*perWriter)
	}
	recent := l.Recent(0)
	if len(recent) != cap {
		t.Fatalf("retained %d roots after wraparound, want %d", len(recent), cap)
	}
	if got := l.Recent(5); len(got) != 5 {
		t.Fatalf("Recent(5) returned %d", len(got))
	}
}

func TestSpanChildCapEvictsOldest(t *testing.T) {
	l := NewSpanLog(4)
	l.SetMaxChildren(3)
	evicted := &Counter{}
	l.SetEvictionCounter(evicted)

	ctx := WithSpanLog(context.Background(), l)
	ctx, root := StartSpan(ctx, "root")
	for i := 0; i < 10; i++ {
		_, c := StartSpan(ctx, fmt.Sprintf("child-%d", i))
		c.End()
	}
	root.End()

	views := l.Recent(1)
	if len(views) != 1 {
		t.Fatalf("recent = %d roots", len(views))
	}
	v := views[0]
	if len(v.Children) != 3 {
		t.Fatalf("retained %d children, want 3", len(v.Children))
	}
	// Ring semantics: the newest children survive.
	for i, c := range v.Children {
		if want := fmt.Sprintf("child-%d", 7+i); c.Name != want {
			t.Fatalf("child %d = %s, want %s", i, c.Name, want)
		}
	}
	if v.DroppedChildren != 7 {
		t.Fatalf("dropped_children = %d, want 7", v.DroppedChildren)
	}
	if evicted.Value() != 7 {
		t.Fatalf("eviction counter = %d, want 7", evicted.Value())
	}
}

func TestSpanChildCapAppliesToNestedSpans(t *testing.T) {
	l := NewSpanLog(2)
	l.SetMaxChildren(2)
	ctx := WithSpanLog(context.Background(), l)
	ctx, root := StartSpan(ctx, "root")
	mid, midSpan := StartSpan(ctx, "mid")
	for i := 0; i < 5; i++ {
		_, c := StartSpan(mid, fmt.Sprintf("leaf-%d", i))
		c.End()
	}
	midSpan.End()
	root.End()
	v := l.Recent(1)[0]
	if len(v.Children) != 1 || v.Children[0].Name != "mid" {
		t.Fatalf("root children = %+v", v.Children)
	}
	if got := v.Children[0]; len(got.Children) != 2 || got.DroppedChildren != 3 {
		t.Fatalf("nested cap not applied: %d children, %d dropped", len(got.Children), got.DroppedChildren)
	}
}

func TestSpanChildCapDefault(t *testing.T) {
	l := NewSpanLog(1)
	ctx := WithSpanLog(context.Background(), l)
	ctx, root := StartSpan(ctx, "root")
	for i := 0; i < DefaultMaxChildren+10; i++ {
		_, c := StartSpan(ctx, "child")
		c.End()
	}
	root.End()
	v := l.Recent(1)[0]
	if len(v.Children) != DefaultMaxChildren || v.DroppedChildren != 10 {
		t.Fatalf("default cap: %d children, %d dropped", len(v.Children), v.DroppedChildren)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(nil)
	s := h.Snapshot()
	if s.Count != 0 || s.P50 != 0 || s.P95 != 0 || s.P99 != 0 || s.Sum != 0 {
		t.Fatalf("empty histogram snapshot = %+v", s)
	}
	var nilH *Histogram
	if s := nilH.Snapshot(); s != (HistogramSnapshot{}) {
		t.Fatalf("nil histogram snapshot = %+v", s)
	}
}

func TestHistogramQuantileSingleBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // everything lands in the (1, 2] bucket
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	for _, q := range []float64{s.P50, s.P95, s.P99} {
		if q < 1 || q > 2 {
			t.Fatalf("quantile %v escaped the single occupied bucket (1, 2]", q)
		}
	}
	if s.P50 >= s.P95 || s.P95 >= s.P99 {
		t.Fatalf("quantiles not increasing within bucket: %v %v %v", s.P50, s.P95, s.P99)
	}
}

func TestHistogramQuantileOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	for i := 0; i < 10; i++ {
		h.Observe(100) // +Inf bucket
	}
	s := h.Snapshot()
	// The +Inf bucket has no upper bound to interpolate toward; the
	// snapshot reports the last finite bound rather than inventing one.
	if s.P50 != 2 || s.P99 != 2 {
		t.Fatalf("overflow-bucket quantiles = %+v, want last finite bound 2", s)
	}
	if math.IsInf(s.P99, 0) || math.IsNaN(s.P99) {
		t.Fatalf("overflow quantile not finite: %v", s.P99)
	}
}

func TestHistogramCountOver(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.25, 0.5})
	h.Observe(0.05) // (−∞, 0.1]
	h.Observe(0.2)  // (0.1, 0.25]
	h.Observe(0.3)  // (0.25, 0.5]
	h.Observe(0.3)  // (0.25, 0.5]
	h.Observe(99)   // +Inf
	total, over := h.CountOver(0.25)
	if total != 5 || over != 3 {
		t.Fatalf("CountOver(0.25) = (%d, %d), want (5, 3)", total, over)
	}
	if total, over = h.CountOver(0.5); total != 5 || over != 1 {
		t.Fatalf("CountOver(0.5) = (%d, %d), want (5, 1)", total, over)
	}
	var nilH *Histogram
	if total, over = nilH.CountOver(1); total != 0 || over != 0 {
		t.Fatal("nil CountOver not zero")
	}
}

func TestRuntimeStatsCollect(t *testing.T) {
	reg := NewRegistry()
	rs := NewRuntimeStats(reg, time.Now().Add(-3*time.Second))
	rs.Collect()
	snap := reg.Snapshot()
	if g, _ := snap["ctfl_process_goroutines"].(float64); g < 1 {
		t.Fatalf("goroutines gauge = %v", g)
	}
	if h, _ := snap["ctfl_process_heap_alloc_bytes"].(float64); h <= 0 {
		t.Fatalf("heap gauge = %v", h)
	}
	if u, _ := snap["ctfl_process_uptime_seconds"].(float64); u < 2.5 {
		t.Fatalf("uptime gauge = %v", u)
	}
	if _, ok := snap["ctfl_process_open_fds"]; !ok {
		t.Fatal("open fds gauge missing")
	}
	var nilRS *RuntimeStats
	nilRS.Collect()
}
