// Package telemetry is the repo's stdlib-only observability substrate:
// a metrics registry (atomic counters, float gauges, fixed-bucket
// histograms with quantile snapshots), lightweight hierarchical span
// tracing with a ring buffer of recent traces, and log/slog glue with
// request-id propagation.
//
// Everything is allocation-conscious and safe for concurrent use. The
// packages it instruments (nn, core, jobs, store, server) keep telemetry
// strictly optional: a nil metrics handle or an un-instrumented context
// costs one pointer comparison on the hot path and allocates nothing.
//
// Metric names follow the Prometheus exposition conventions
// (`ctfl_<subsystem>_<what>_<unit>`, labels inline in the registered
// name), and Registry renders both the text exposition format for
// GET /metrics and a JSON snapshot for /v1/stats.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n must be >= 0 by convention).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count. A nil counter reads 0.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 value that can move both ways.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by d (CAS loop; contended adds stay correct).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the gauge. A nil gauge reads 0.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DurationBuckets are the default latency bucket upper bounds, in seconds
// (100µs … 10s, roughly geometric — the range a trace query, a WAL fsync,
// or an HTTP request plausibly lands in).
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are the default size bucket upper bounds, in bytes.
var SizeBuckets = []float64{
	64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20,
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
// Observations are float64 (seconds for latencies, bytes for sizes).
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Int64
	sum    Gauge
	count  atomic.Int64
}

// NewHistogram builds a standalone histogram over the given ascending
// bucket upper bounds (nil means DurationBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small and the scan is branch-predictable.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveSince records the elapsed seconds since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// CountOver reports the histogram's total observation count and how many
// observations landed in buckets whose upper bound exceeds bound. This is
// the cumulative feed for latency SLOs: pick bound on a bucket boundary
// and "over" counts every observation that may have exceeded it.
func (h *Histogram) CountOver(bound float64) (total, over int64) {
	if h == nil {
		return 0, 0
	}
	for i, b := range h.bounds {
		c := h.counts[i].Load()
		total += c
		if b > bound {
			over += c
		}
	}
	c := h.counts[len(h.bounds)].Load() // +Inf bucket
	total += c
	over += c
	return total, over
}

// HistogramSnapshot is a point-in-time histogram summary. Quantiles are
// estimated by linear interpolation within the containing bucket.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{Count: total, Sum: h.sum.Value()}
	if total > 0 {
		s.P50 = quantile(h.bounds, counts, total, 0.50)
		s.P95 = quantile(h.bounds, counts, total, 0.95)
		s.P99 = quantile(h.bounds, counts, total, 0.99)
	}
	return s
}

// quantile interpolates the q-quantile from cumulative bucket counts. The
// +Inf bucket reports its lower bound (the last finite bound).
func quantile(bounds []float64, counts []int64, total int64, q float64) float64 {
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(bounds) { // +Inf bucket
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		if c == 0 {
			return bounds[i]
		}
		frac := (rank - float64(prev)) / float64(c)
		return lo + (bounds[i]-lo)*frac
	}
	return 0
}

// metricKind tags registry entries for TYPE lines and snapshots.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered instrument. Registered names may carry inline
// Prometheus labels — `ctfl_http_requests_total{route="/v1/trace"}` — which
// are split so histograms can merge the `le` label correctly.
type metric struct {
	name   string // full registered name, labels included
	base   string // name up to the label block
	labels string // label block contents without braces, "" if none
	help   string
	kind   metricKind

	c *Counter
	g *Gauge
	h *Histogram
}

// Registry is a named collection of instruments. Registration is
// idempotent by full name: asking for an existing name returns the same
// instrument, so packages can re-derive handles freely.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*metric
	order  []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// register returns the existing entry for name or creates one via mk.
func (r *Registry) register(name, help string, kind metricKind, mk func(m *metric)) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: %q registered as %s, requested as %s", name, m.kind, kind))
		}
		return m
	}
	base, labels := splitName(name)
	m := &metric{name: name, base: base, labels: labels, help: help, kind: kind}
	mk(m)
	r.byName[name] = m
	r.order = append(r.order, m)
	return m
}

// Counter returns (registering on first use) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, func(m *metric) { m.c = &Counter{} }).c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, func(m *metric) { m.g = &Gauge{} }).g
}

// Histogram returns (registering on first use) the named histogram over
// the given bucket bounds (nil = DurationBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, kindHistogram, func(m *metric) { m.h = NewHistogram(bounds) }).h
}

// snapshotOrder returns the registered metrics sorted by base name then
// label block, so families render contiguously.
func (r *Registry) snapshotOrder() []*metric {
	r.mu.RLock()
	ms := append([]*metric(nil), r.order...)
	r.mu.RUnlock()
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].base != ms[j].base {
			return ms[i].base < ms[j].base
		}
		return ms[i].labels < ms[j].labels
	})
	return ms
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE per family, then one sample line per
// instrument (histograms expand into _bucket/_sum/_count series).
func (r *Registry) WritePrometheus(w io.Writer) {
	prevBase := ""
	for _, m := range r.snapshotOrder() {
		if m.base != prevBase {
			if m.help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", m.base, m.help)
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", m.base, m.kind)
			prevBase = m.base
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(w, "%s %d\n", m.name, m.c.Value())
		case kindGauge:
			fmt.Fprintf(w, "%s %g\n", m.name, m.g.Value())
		case kindHistogram:
			writePromHistogram(w, m)
		}
	}
}

func writePromHistogram(w io.Writer, m *metric) {
	h := m.h
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", m.base, labelPrefix(m.labels), formatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", m.base, labelPrefix(m.labels), cum)
	fmt.Fprintf(w, "%s_sum%s %g\n", m.base, labelSuffix(m.labels), h.sum.Value())
	fmt.Fprintf(w, "%s_count%s %d\n", m.base, labelSuffix(m.labels), cum)
}

func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

func labelSuffix(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func formatBound(b float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", b), "0"), ".")
}

// Snapshot returns a JSON-friendly view of every instrument, keyed by the
// full registered name: counters and gauges as numbers, histograms as
// {count, sum, p50, p95, p99} objects. This is what /v1/stats merges in.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, m := range r.snapshotOrder() {
		switch m.kind {
		case kindCounter:
			out[m.name] = m.c.Value()
		case kindGauge:
			out[m.name] = m.g.Value()
		case kindHistogram:
			out[m.name] = m.h.Snapshot()
		}
	}
	return out
}
