package telemetry

import (
	"testing"
	"time"
)

func tickN(e *SLOEvaluator, at time.Time, n int, step time.Duration, drive func(i int)) (time.Time, []SLOTransition) {
	var all []SLOTransition
	for i := 0; i < n; i++ {
		drive(i)
		at = at.Add(step)
		all = append(all, e.Tick(at)...)
	}
	return at, all
}

func TestSLOBreachTripsAndClears(t *testing.T) {
	reg := NewRegistry()
	total := reg.Counter("test_total", "")
	bad := reg.Counter("test_bad", "")
	e := NewSLOEvaluator(reg)
	e.Add(SLOConfig{
		Name: "availability", Target: 0.99,
		FastWindow: time.Minute, SlowWindow: 5 * time.Minute,
		FastBurn: 10, SlowBurn: 5,
		Source: CounterSLOSource{Total: total, Bad: bad},
	})

	now := time.Unix(1_700_000_000, 0)
	// Healthy traffic: no breach.
	now, trs := tickN(e, now, 10, 5*time.Second, func(int) { total.Add(100) })
	if len(trs) != 0 || e.Breached("availability") {
		t.Fatalf("healthy traffic breached: %v", trs)
	}
	// 50% failures: burn = 0.5/0.01 = 50 in both windows once sustained.
	now, trs = tickN(e, now, 12, 5*time.Second, func(int) { total.Add(100); bad.Add(50) })
	if e.Breached("availability") != true {
		t.Fatal("sustained 50% failures did not breach")
	}
	entered := 0
	for _, tr := range trs {
		if tr.Name == "availability" && tr.Breached {
			entered++
		}
	}
	if entered != 1 {
		t.Fatalf("breach entered %d times, want 1", entered)
	}
	// Recovery: healthy traffic long enough to flush both windows clears
	// with hysteresis.
	_, trs = tickN(e, now, 80, 5*time.Second, func(int) { total.Add(100) })
	if e.Breached("availability") {
		t.Fatal("breach did not clear after sustained recovery")
	}
	cleared := false
	for _, tr := range trs {
		if tr.Name == "availability" && !tr.Breached {
			cleared = true
		}
	}
	if !cleared {
		t.Fatal("clear transition not reported")
	}
	if snap := e.Snapshot(); len(snap) != 1 || snap[0].Breaches != 1 || snap[0].Breached {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestSLOSingleSpikeDoesNotBreach(t *testing.T) {
	reg := NewRegistry()
	total := reg.Counter("spike_total", "")
	bad := reg.Counter("spike_bad", "")
	e := NewSLOEvaluator(reg)
	e.Add(SLOConfig{
		Name: "availability", Target: 0.99,
		FastWindow: 30 * time.Second, SlowWindow: 10 * time.Minute,
		FastBurn: 10, SlowBurn: 5,
		Source: CounterSLOSource{Total: total, Bad: bad},
	})
	now := time.Unix(1_700_000_000, 0)
	// Ten minutes of clean traffic, then one bad tick: the fast window
	// burns hot but the slow window dilutes it below threshold.
	now, _ = tickN(e, now, 120, 5*time.Second, func(int) { total.Add(100) })
	total.Add(100)
	bad.Add(100)
	e.Tick(now.Add(5 * time.Second))
	if e.Breached("availability") {
		t.Fatal("one spike against a long clean history breached")
	}
}

func TestSLOHistogramSource(t *testing.T) {
	h := NewHistogram(nil)
	src := HistogramSLOSource{H: h, Bound: 0.25}
	h.Observe(0.01)
	h.Observe(0.2)
	h.Observe(0.3)
	h.Observe(100) // +Inf bucket
	total, over := src.Sample()
	if total != 4 || over != 2 {
		t.Fatalf("histogram source = (%d, %d), want (4, 2)", total, over)
	}
}

func TestSLOGaugeSource(t *testing.T) {
	g := &Gauge{}
	src := &GaugeSLOSource{G: g, Bound: 300}
	g.Set(10)
	src.Sample()
	g.Set(301)
	src.Sample()
	total, bad := src.Sample() // still over
	if total != 3 || bad != 2 {
		t.Fatalf("gauge source = (%d, %d), want (3, 2)", total, bad)
	}
}

func TestSLOResetClearsBreach(t *testing.T) {
	reg := NewRegistry()
	total := reg.Counter("reset_total", "")
	bad := reg.Counter("reset_bad", "")
	e := NewSLOEvaluator(reg)
	e.Add(SLOConfig{
		Name: "wal", Target: 0.99,
		FastWindow: time.Minute, SlowWindow: 2 * time.Minute,
		FastBurn: 2, SlowBurn: 2,
		Source: CounterSLOSource{Total: total, Bad: bad},
	})
	now := time.Unix(1_700_000_000, 0)
	now, _ = tickN(e, now, 10, 5*time.Second, func(int) { total.Add(10); bad.Add(10) })
	if !e.Breached("wal") {
		t.Fatal("total failure did not breach")
	}
	e.Reset("wal")
	if e.Breached("wal") {
		t.Fatal("Reset left the objective breached")
	}
	if snap := e.Snapshot(); snap[0].FastBurn != 0 || snap[0].SlowBurn != 0 {
		t.Fatalf("Reset left burn gauges set: %+v", snap[0])
	}
	// Breach counter survives Reset: it is history, not state.
	if snap := e.Snapshot(); snap[0].Breaches != 1 {
		t.Fatalf("breach count after reset = %d", snap[0].Breaches)
	}
	_ = now
}

func TestSLONilEvaluator(t *testing.T) {
	var e *SLOEvaluator
	if got := e.Tick(time.Unix(0, 0)); got != nil {
		t.Fatalf("nil Tick = %v", got)
	}
	if e.Breached("x") || e.Snapshot() != nil {
		t.Fatal("nil evaluator not inert")
	}
	e.Reset("x")
}

func TestSLOMetricsExported(t *testing.T) {
	reg := NewRegistry()
	total := reg.Counter("m_total", "")
	bad := reg.Counter("m_bad", "")
	e := NewSLOEvaluator(reg)
	e.Add(SLOConfig{Name: "avail", Source: CounterSLOSource{Total: total, Bad: bad}})
	e.Tick(time.Unix(1_700_000_000, 0))
	snap := reg.Snapshot()
	for _, name := range []string{
		`ctfl_slo_burn_rate{slo="avail",window="fast"}`,
		`ctfl_slo_burn_rate{slo="avail",window="slow"}`,
		`ctfl_slo_breach{slo="avail"}`,
		`ctfl_slo_breaches_total{slo="avail"}`,
	} {
		if _, ok := snap[name]; !ok {
			t.Fatalf("metric %s not exported", name)
		}
	}
}
