package telemetry

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ctfl_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if again := r.Counter("ctfl_test_total", ""); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("ctfl_test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v", g.Value())
	}

	// Nil handles are safe no-ops: disabled telemetry must never panic.
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	nc.Add(1)
	ng.Set(1)
	nh.Observe(1)
	if nc.Value() != 0 || ng.Value() != 0 || nh.Snapshot().Count != 0 {
		t.Fatal("nil instruments not inert")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ctfl_x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("ctfl_x", "")
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%8) + 0.5) // uniform over [0.5, 7.5]
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Sum < 390 || s.Sum > 410 {
		t.Fatalf("sum = %v", s.Sum)
	}
	if s.P50 < 1 || s.P50 > 5 {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.P99 < s.P50 || s.P99 > 8 {
		t.Fatalf("p99 = %v (p50 %v)", s.P99, s.P50)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(`ctfl_http_requests_total{route="/v1/trace"}`, "requests").Add(3)
	r.Counter(`ctfl_http_requests_total{route="/healthz"}`, "requests").Add(1)
	r.Gauge("ctfl_http_in_flight", "in-flight requests").Set(2)
	r.Histogram(`ctfl_http_request_seconds{route="/v1/trace"}`, "latency", []float64{0.1, 1}).Observe(0.5)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE ctfl_http_requests_total counter",
		`ctfl_http_requests_total{route="/v1/trace"} 3`,
		`ctfl_http_requests_total{route="/healthz"} 1`,
		"# TYPE ctfl_http_in_flight gauge",
		"ctfl_http_in_flight 2",
		"# TYPE ctfl_http_request_seconds histogram",
		`ctfl_http_request_seconds_bucket{route="/v1/trace",le="0.1"} 0`,
		`ctfl_http_request_seconds_bucket{route="/v1/trace",le="1"} 1`,
		`ctfl_http_request_seconds_bucket{route="/v1/trace",le="+Inf"} 1`,
		`ctfl_http_request_seconds_sum{route="/v1/trace"} 0.5`,
		`ctfl_http_request_seconds_count{route="/v1/trace"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// TYPE must appear exactly once per family even with several label sets.
	if strings.Count(out, "# TYPE ctfl_http_requests_total") != 1 {
		t.Fatalf("duplicate TYPE lines:\n%s", out)
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "").Add(7)
	r.Gauge("g", "").Set(1.25)
	r.Histogram("h", "", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if snap["c"].(int64) != 7 || snap["g"].(float64) != 1.25 {
		t.Fatalf("snapshot = %v", snap)
	}
	if hs := snap["h"].(HistogramSnapshot); hs.Count != 1 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
}

func TestSpanTreeRecording(t *testing.T) {
	log := NewSpanLog(4)
	ctx := WithSpanLog(context.Background(), log)
	ctx, root := StartSpan(ctx, "http /v1/trace")
	root.SetAttr("request_id", "abc123")
	cctx, child := StartSpan(ctx, "job.trace")
	_, grand := StartSpan(cctx, "tracer.trace")
	grand.End()
	child.End()
	root.End()

	views := log.Recent(10)
	if len(views) != 1 {
		t.Fatalf("recent = %d traces", len(views))
	}
	v := views[0]
	if v.Name != "http /v1/trace" || v.Attrs["request_id"] != "abc123" {
		t.Fatalf("root = %+v", v)
	}
	if len(v.Children) != 1 || v.Children[0].Name != "job.trace" {
		t.Fatalf("children = %+v", v.Children)
	}
	if len(v.Children[0].Children) != 1 || v.Children[0].Children[0].Name != "tracer.trace" {
		t.Fatalf("grandchildren = %+v", v.Children[0].Children)
	}
}

func TestSpanDisabledWithoutLog(t *testing.T) {
	ctx, s := StartSpan(context.Background(), "anything")
	if s != nil {
		t.Fatal("span created without a SpanLog")
	}
	// All operations on the nil span are no-ops.
	s.SetAttr("k", "v")
	s.End()
	if ctx == nil {
		t.Fatal("ctx lost")
	}
}

func TestSpanLogRingEviction(t *testing.T) {
	log := NewSpanLog(2)
	for i := 0; i < 5; i++ {
		ctx := WithSpanLog(context.Background(), log)
		_, s := StartSpan(ctx, fmt.Sprintf("span-%d", i))
		s.End()
	}
	views := log.Recent(0)
	if len(views) != 2 {
		t.Fatalf("retained %d, want 2", len(views))
	}
	if views[0].Name != "span-4" || views[1].Name != "span-3" {
		t.Fatalf("order = %s, %s", views[0].Name, views[1].Name)
	}
	if log.Total() != 5 {
		t.Fatalf("total = %d", log.Total())
	}
}

func TestRequestIDPropagation(t *testing.T) {
	id := NewRequestID()
	if len(id) != 16 {
		t.Fatalf("id %q", id)
	}
	if id2 := NewRequestID(); id2 == id {
		t.Fatalf("ids not unique: %q", id)
	}
	ctx := WithRequestID(context.Background(), id)
	if got := RequestIDFrom(ctx); got != id {
		t.Fatalf("got %q want %q", got, id)
	}
	if RequestIDFrom(context.Background()) != "" {
		t.Fatal("empty context produced an id")
	}
}

func TestLogfLogger(t *testing.T) {
	var lines []string
	l := LogfLogger(func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	l.With("request_id", "r1").Info("http request", "route", "/healthz", "status", 200)
	if len(lines) != 1 {
		t.Fatalf("lines = %v", lines)
	}
	for _, want := range []string{"INFO", "http request", "request_id=r1", "route=/healthz", "status=200"} {
		if !strings.Contains(lines[0], want) {
			t.Fatalf("line %q missing %q", lines[0], want)
		}
	}
}

func TestConcurrentInstrumentUse(t *testing.T) {
	r := NewRegistry()
	log := NewSpanLog(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("shared_total", "")
			h := r.Histogram("shared_seconds", "", nil)
			for i := 0; i < 200; i++ {
				c.Inc()
				h.Observe(float64(i) / 1000)
				ctx := WithSpanLog(context.Background(), log)
				ctx, s := StartSpan(ctx, "op")
				_, cs := StartSpan(ctx, "child")
				cs.End()
				s.End()
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		// Concurrent scrapes while writers are hot.
		for i := 0; i < 50; i++ {
			var b strings.Builder
			r.WritePrometheus(&b)
			_ = r.Snapshot()
			_ = log.Recent(8)
			time.Sleep(time.Millisecond)
		}
		close(done)
	}()
	wg.Wait()
	<-done
	if got := r.Counter("shared_total", "").Value(); got != 8*200 {
		t.Fatalf("counter = %d", got)
	}
	if hs := r.Histogram("shared_seconds", "", nil).Snapshot(); hs.Count != 8*200 {
		t.Fatalf("histogram count = %d", hs.Count)
	}
}
