package multiclass

import (
	"math/rand"

	"repro/internal/dataset"
)

// TriageSchema is the feature schema of the synthetic 3-class triage task
// used to exercise the one-vs-rest extension: classify incoming tickets as
// low / medium / high urgency from planted rules over mixed features.
func TriageSchema() *dataset.Schema {
	return &dataset.Schema{
		Name:   "triage",
		Labels: [2]string{"rest", "one"}, // unused by multiclass; kept valid
		Features: []dataset.Feature{
			{Name: "severity", Kind: dataset.Continuous, Min: 0, Max: 10},
			{Name: "customers-affected", Kind: dataset.Continuous, Min: 0, Max: 100000},
			{Name: "component", Kind: dataset.Discrete, Categories: []string{
				"auth", "billing", "storage", "frontend", "analytics"}},
			{Name: "has-workaround", Kind: dataset.Discrete, Categories: []string{"yes", "no"}},
			{Name: "age-hours", Kind: dataset.Continuous, Min: 0, Max: 720},
		},
	}
}

// TriageClassNames lists the task's classes in label order.
func TriageClassNames() []string { return []string{"low", "medium", "high"} }

// Triage generates n rows of the synthetic triage benchmark. Class rules:
// high urgency for severe auth/billing incidents without workaround or with
// mass impact; low urgency for mild, old, or workaround-available tickets;
// medium otherwise — with noise so the task is non-trivial (~80-90%
// achievable accuracy).
func Triage(r *rand.Rand, n int) *Table {
	t := &Table{Schema: TriageSchema(), ClassNames: TriageClassNames()}
	for i := 0; i < n; i++ {
		sev := r.Float64() * 10
		cust := r.ExpFloat64() * 8000
		if cust > 100000 {
			cust = 100000
		}
		comp := r.Intn(5)
		workaround := r.Intn(2) // 0=yes, 1=no
		age := r.Float64() * 720

		score := 0.0
		if sev > 7 {
			score += 2
		}
		if cust > 20000 {
			score += 2
		}
		if comp == 0 || comp == 1 { // auth, billing
			score += 1
		}
		if workaround == 1 {
			score += 1
		}
		if sev < 3 {
			score -= 2
		}
		if age > 400 {
			score -= 1
		}
		score += r.NormFloat64() * 0.8

		class := 1 // medium
		if score >= 3.2 {
			class = 2 // high
		} else if score <= 0.4 {
			class = 0 // low
		}
		t.Instances = append(t.Instances, Instance{
			Values: []float64{sev, cust, float64(comp), float64(workaround), age},
			Class:  class,
		})
	}
	return t
}

// PartitionByClassAffinity splits a table across n participants with each
// participant biased toward one class (round-robin over classes): the
// multi-class analogue of the paper's skew-label case. bias in [0,1] is the
// probability a row goes to a participant affine to its class.
func PartitionByClassAffinity(t *Table, n int, bias float64, r *rand.Rand) []*Participant {
	if n < 1 {
		panic("multiclass: need at least one participant")
	}
	parts := make([]*Participant, n)
	for i := range parts {
		parts[i] = &Participant{
			ID:   i,
			Name: string(rune('A' + i%26)),
			Data: &Table{Schema: t.Schema, ClassNames: t.ClassNames},
		}
	}
	k := t.NumClasses()
	affine := make([][]int, k)
	for i := 0; i < n; i++ {
		c := i % k
		affine[c] = append(affine[c], i)
	}
	for _, in := range t.Instances {
		var pi int
		if cands := affine[in.Class]; r.Float64() < bias && len(cands) > 0 {
			pi = cands[r.Intn(len(cands))]
		} else {
			pi = r.Intn(n)
		}
		parts[pi].Data.Instances = append(parts[pi].Data.Instances, in)
	}
	return parts
}
