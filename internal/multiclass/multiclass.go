// Package multiclass extends CTFL from binary to K-class classification
// through one-vs-rest decomposition — the "minor changes" the paper's
// Definition III.1 discussion alludes to. One binary logical network is
// trained per class (class k versus the rest); prediction takes the argmax
// of the K vote scores; and a correctly classified test instance is traced
// inside the predicted class's rule space against training data of the same
// class, exactly mirroring the binary TP case of Section III-C.
package multiclass

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rules"
)

// Instance is one labeled row with a class in [0, K).
type Instance struct {
	Values []float64
	Class  int
}

// Table is a K-class dataset bound to a feature schema (the schema's binary
// Labels field is unused here; ClassNames carries the K names).
type Table struct {
	Schema     *dataset.Schema
	ClassNames []string
	Instances  []Instance
}

// Len returns the number of instances.
func (t *Table) Len() int { return len(t.Instances) }

// NumClasses returns K.
func (t *Table) NumClasses() int { return len(t.ClassNames) }

// Validate checks labels and row shapes.
func (t *Table) Validate() error {
	if len(t.ClassNames) < 2 {
		return fmt.Errorf("multiclass: need at least 2 classes, have %d", len(t.ClassNames))
	}
	for i, in := range t.Instances {
		if len(in.Values) != t.Schema.NumFeatures() {
			return fmt.Errorf("multiclass: instance %d has %d values, want %d", i, len(in.Values), t.Schema.NumFeatures())
		}
		if in.Class < 0 || in.Class >= len(t.ClassNames) {
			return fmt.Errorf("multiclass: instance %d has class %d, want [0,%d)", i, in.Class, len(t.ClassNames))
		}
	}
	return nil
}

// Binary returns the one-vs-rest view for class k: label 1 for rows of
// class k, label 0 otherwise. Instance value slices are shared.
func (t *Table) Binary(k int) *dataset.Table {
	out := &dataset.Table{Schema: t.Schema, Instances: make([]dataset.Instance, t.Len())}
	for i, in := range t.Instances {
		label := 0
		if in.Class == k {
			label = 1
		}
		out.Instances[i] = dataset.Instance{Values: in.Values, Label: label}
	}
	return out
}

// Split shuffles and splits the table.
func (t *Table) Split(r *rand.Rand, testFrac float64) (train, test *Table) {
	idx := r.Perm(t.Len())
	nTest := int(float64(t.Len()) * testFrac)
	if nTest < 1 && t.Len() > 1 {
		nTest = 1
	}
	pick := func(ids []int) *Table {
		out := &Table{Schema: t.Schema, ClassNames: t.ClassNames}
		for _, i := range ids {
			out.Instances = append(out.Instances, t.Instances[i])
		}
		return out
	}
	return pick(idx[nTest:]), pick(idx[:nTest])
}

// Model is a one-vs-rest ensemble of binary logical networks.
type Model struct {
	enc    *dataset.Encoder
	models []*nn.Model
	sets   []*rules.Set
}

// Train fits one binary logical network per class on the training table.
func Train(t *Table, enc *dataset.Encoder, cfg nn.Config) (*Model, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	m := &Model{enc: enc}
	for k := 0; k < t.NumClasses(); k++ {
		bm, err := nn.New(enc.Width(), cfg)
		if err != nil {
			return nil, err
		}
		xs, ys := enc.EncodeTable(t.Binary(k))
		bm.Train(xs, ys)
		m.models = append(m.models, bm)
		m.sets = append(m.sets, rules.Extract(bm, enc))
	}
	return m, nil
}

// Predict returns the argmax class of the K binarized vote scores.
func (m *Model) Predict(values []float64) int {
	return m.predictEncoded(m.enc.Encode(dataset.Instance{Values: values}, nil))
}

// predictEncoded is Predict on an already-encoded feature vector, letting
// hot paths encode each instance exactly once.
func (m *Model) predictEncoded(x []float64) int {
	best, bestScore := 0, m.models[0].Score(x)
	for k := 1; k < len(m.models); k++ {
		if s := m.models[k].Score(x); s > bestScore {
			best, bestScore = k, s
		}
	}
	return best
}

// Accuracy evaluates argmax accuracy on a table.
func (m *Model) Accuracy(t *Table) float64 {
	if t.Len() == 0 {
		return 0
	}
	ok := 0
	for _, in := range t.Instances {
		if m.Predict(in.Values) == in.Class {
			ok++
		}
	}
	return float64(ok) / float64(t.Len())
}

// Rules returns class k's extracted rule set (for interpretability).
func (m *Model) Rules(k int) *rules.Set { return m.sets[k] }

// Participant is a multi-class federated client.
type Participant struct {
	ID   int
	Name string
	Data *Table
}

// Estimator traces multi-class contributions: one core tracer per class,
// each indexing the participants' one-vs-rest activation vectors.
type Estimator struct {
	model    *Model
	tracers  []*core.Tracer
	numParts int
	cfg      core.Config
}

// NewEstimator indexes the participants under the trained model.
func NewEstimator(m *Model, parts []*Participant, cfg core.Config) *Estimator {
	e := &Estimator{model: m, numParts: len(parts), cfg: cfg}
	for k := range m.models {
		var uploads []core.TrainingUpload
		for pi, p := range parts {
			acts, _ := m.sets[k].ActivationsTable(p.Data.Binary(k))
			for i, a := range acts {
				label := 0
				if p.Data.Instances[i].Class == k {
					label = 1
				}
				uploads = append(uploads, core.TrainingUpload{Owner: pi, Label: label, Activations: a})
			}
		}
		e.tracers = append(e.tracers, core.NewTracerFromUploads(m.sets[k], len(parts), uploads, cfg))
	}
	return e
}

// Result holds a multi-class tracing pass.
type Result struct {
	NumParticipants int
	TestSize        int
	Pred, Truth     []int
	// Counts[te][i] are participant i's related training instances for test
	// instance te, traced in the predicted class's rule space.
	Counts [][]int
}

// Correct reports whether test instance te was classified correctly.
func (r *Result) Correct(te int) bool { return r.Pred[te] == r.Truth[te] }

// Trace classifies every test instance with the argmax rule vote and traces
// it in the predicted class's rule space: correctly classified instances
// earn credit for same-class training data (TP case), misclassified ones
// feed the loss side exactly as in the binary tracer.
func (e *Estimator) Trace(test *Table) *Result {
	res := &Result{
		NumParticipants: e.numParts,
		TestSize:        test.Len(),
		Pred:            make([]int, test.Len()),
		Truth:           make([]int, test.Len()),
		Counts:          make([][]int, test.Len()),
	}
	var x []float64
	for te, in := range test.Instances {
		// Encode once per instance; prediction and tracing share the vector.
		x = e.model.enc.Encode(dataset.Instance{Values: in.Values}, x)
		pred := e.model.predictEncoded(x)
		res.Pred[te] = pred
		res.Truth[te] = in.Class
		set := e.model.sets[pred]
		side := set.Activations(x).And(set.ClassMask(1))
		res.Counts[te] = e.tracers[pred].TraceActivations(side, 1)
	}
	return res
}

// MicroScores is Eq. 5 over the multi-class trace.
func (r *Result) MicroScores() []float64 {
	scores := make([]float64, r.NumParticipants)
	if r.TestSize == 0 {
		return scores
	}
	inv := 1 / float64(r.TestSize)
	for te := 0; te < r.TestSize; te++ {
		if !r.Correct(te) {
			continue
		}
		total := 0
		for _, c := range r.Counts[te] {
			total += c
		}
		if total == 0 {
			continue
		}
		for i, c := range r.Counts[te] {
			scores[i] += inv * float64(c) / float64(total)
		}
	}
	return scores
}

// MacroScores is Eq. 6 over the multi-class trace at the given delta.
func (r *Result) MacroScores(delta int) []float64 {
	if delta < 1 {
		delta = 1
	}
	scores := make([]float64, r.NumParticipants)
	if r.TestSize == 0 {
		return scores
	}
	inv := 1 / float64(r.TestSize)
	for te := 0; te < r.TestSize; te++ {
		if !r.Correct(te) {
			continue
		}
		q := 0
		for _, c := range r.Counts[te] {
			if c >= delta {
				q++
			}
		}
		if q == 0 {
			continue
		}
		for i, c := range r.Counts[te] {
			if c >= delta {
				scores[i] += inv / float64(q)
			}
		}
	}
	return scores
}

// Accuracy of the argmax classifier observed during tracing.
func (r *Result) Accuracy() float64 {
	if r.TestSize == 0 {
		return 0
	}
	ok := 0
	for te := 0; te < r.TestSize; te++ {
		if r.Correct(te) {
			ok++
		}
	}
	return float64(ok) / float64(r.TestSize)
}
