package multiclass

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/stats"
)

func TestTriageGenerator(t *testing.T) {
	r := stats.NewRNG(1)
	tab := Triage(r, 2000)
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if tab.NumClasses() != 3 {
		t.Fatalf("classes = %d", tab.NumClasses())
	}
	var counts [3]int
	for _, in := range tab.Instances {
		counts[in.Class]++
	}
	for c, n := range counts {
		if n < 100 {
			t.Fatalf("class %d has only %d rows — degenerate generator", c, n)
		}
	}
	// Planted rule sanity: severe auth incidents without workaround should
	// be mostly high urgency.
	hi, n := 0, 0
	for _, in := range tab.Instances {
		if in.Values[0] > 8 && int(in.Values[2]) == 0 && int(in.Values[3]) == 1 && in.Values[1] > 20000 {
			n++
			if in.Class == 2 {
				hi++
			}
		}
	}
	if n > 0 && float64(hi)/float64(n) < 0.8 {
		t.Fatalf("high-urgency rule not planted: %d/%d", hi, n)
	}
}

func TestTableValidateErrors(t *testing.T) {
	s := TriageSchema()
	bad := &Table{Schema: s, ClassNames: []string{"only"}}
	if err := bad.Validate(); err == nil {
		t.Fatal("single class should be invalid")
	}
	bad2 := &Table{Schema: s, ClassNames: TriageClassNames(), Instances: []Instance{
		{Values: []float64{1}, Class: 0},
	}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("short row should be invalid")
	}
	bad3 := &Table{Schema: s, ClassNames: TriageClassNames(), Instances: []Instance{
		{Values: make([]float64, 5), Class: 3},
	}}
	if err := bad3.Validate(); err == nil {
		t.Fatal("class out of range should be invalid")
	}
}

func TestBinaryView(t *testing.T) {
	r := stats.NewRNG(2)
	tab := Triage(r, 300)
	for k := 0; k < 3; k++ {
		bin := tab.Binary(k)
		if bin.Len() != tab.Len() {
			t.Fatalf("binary view lost rows")
		}
		for i, in := range bin.Instances {
			want := 0
			if tab.Instances[i].Class == k {
				want = 1
			}
			if in.Label != want {
				t.Fatalf("binary(%d) row %d label %d, want %d", k, i, in.Label, want)
			}
		}
		if err := bin.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSplit(t *testing.T) {
	r := stats.NewRNG(3)
	tab := Triage(r, 500)
	train, test := tab.Split(r, 0.2)
	if train.Len()+test.Len() != 500 {
		t.Fatalf("split lost rows: %d + %d", train.Len(), test.Len())
	}
	if test.Len() != 100 {
		t.Fatalf("test size = %d", test.Len())
	}
}

func TestPartitionByClassAffinity(t *testing.T) {
	r := stats.NewRNG(4)
	tab := Triage(r, 3000)
	parts := PartitionByClassAffinity(tab, 3, 0.9, r)
	total := 0
	for i, p := range parts {
		total += p.Data.Len()
		if p.Data.Len() == 0 {
			t.Fatalf("participant %d empty", i)
		}
		// Participant i should be dominated by class i (bias 0.9, n == k).
		var counts [3]int
		for _, in := range p.Data.Instances {
			counts[in.Class]++
		}
		affineClass := i % 3
		if counts[affineClass]*2 < p.Data.Len() {
			t.Fatalf("participant %d not biased to class %d: %v", i, affineClass, counts)
		}
	}
	if total != 3000 {
		t.Fatalf("partition lost rows: %d", total)
	}
}

func trainTriage(t *testing.T) (*Model, []*Participant, *Table) {
	t.Helper()
	r := stats.NewRNG(5)
	tab := Triage(r, 1500)
	train, test := tab.Split(r, 0.2)
	parts := PartitionByClassAffinity(train, 3, 0.8, r)
	enc, err := dataset.NewEncoder(tab.Schema, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	// Centralized training on the union (the OvR trainer API takes one
	// table; FedAvg composition is exercised in the binary packages).
	union := &Table{Schema: tab.Schema, ClassNames: tab.ClassNames}
	for _, p := range parts {
		union.Instances = append(union.Instances, p.Data.Instances...)
	}
	m, err := Train(union, enc, nn.Config{
		Hidden: []int{48}, Epochs: 30, Grafting: true, Seed: 7,
		L1Logic: 2e-4, L2Head: 1e-3, KeepBest: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, parts, test
}

func TestMulticlassLearnsTriage(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	m, _, test := trainTriage(t)
	acc := m.Accuracy(test)
	t.Logf("triage 3-class accuracy: %.3f", acc)
	// Majority class is well under 60%; the OvR model must beat it clearly.
	if acc < 0.65 {
		t.Fatalf("accuracy %.3f too low", acc)
	}
	if m.Rules(0) == nil || m.Rules(2) == nil {
		t.Fatal("per-class rule sets missing")
	}
}

func TestMulticlassTracingScores(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	m, parts, test := trainTriage(t)
	est := NewEstimator(m, parts, core.Config{TauW: 0.8})
	res := est.Trace(test)
	if res.TestSize != test.Len() {
		t.Fatalf("test size = %d", res.TestSize)
	}
	micro := res.MicroScores()
	if len(micro) != 3 {
		t.Fatalf("micro = %v", micro)
	}
	sum := stats.Sum(micro)
	if sum <= 0 || sum > res.Accuracy()+1e-9 {
		t.Fatalf("micro sum %v outside (0, accuracy=%v]", sum, res.Accuracy())
	}
	macro := res.MacroScores(2)
	if stats.Sum(macro) <= 0 {
		t.Fatalf("macro = %v", macro)
	}
	// Class-affine participants should each earn a non-trivial share: the
	// three classes all appear in the test set.
	for i, s := range micro {
		if s <= 0 {
			t.Fatalf("participant %d earned nothing: %v", i, micro)
		}
	}
	// Accuracy consistency between model and result.
	if math.Abs(res.Accuracy()-m.Accuracy(test)) > 1e-12 {
		t.Fatalf("result accuracy %v vs model %v", res.Accuracy(), m.Accuracy(test))
	}
}

func TestMacroDeltaClamp(t *testing.T) {
	r := &Result{NumParticipants: 2, TestSize: 1, Pred: []int{0}, Truth: []int{0}, Counts: [][]int{{1, 0}}}
	if got := r.MacroScores(0); got[0] != 1 {
		t.Fatalf("delta 0 should clamp to 1: %v", got)
	}
	if got := r.MicroScores(); got[0] != 1 || got[1] != 0 {
		t.Fatalf("micro = %v", got)
	}
}

func TestEmptyResult(t *testing.T) {
	r := &Result{NumParticipants: 2}
	if r.Accuracy() != 0 || stats.Sum(r.MicroScores()) != 0 || stats.Sum(r.MacroScores(1)) != 0 {
		t.Fatal("empty result should be all zeros")
	}
}
