package flight

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func reqEvent(route string, status int, dur time.Duration) Event {
	out := OutcomeOK
	switch {
	case status >= 500:
		out = OutcomeError
	case status >= 400:
		out = OutcomeRejected
	}
	return Event{
		Kind:       KindRequest,
		Outcome:    out,
		Status:     int32(status),
		Route:      route,
		Method:     "GET",
		DurationNs: int64(dur),
	}
}

func TestRecordAssignsSequence(t *testing.T) {
	r := New(Config{Size: 8, TailSize: 4})
	for i := 0; i < 3; i++ {
		r.Record(reqEvent("/healthz", 200, time.Millisecond))
	}
	evs := r.Snapshot(Filter{})
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Unix == 0 {
			t.Fatalf("event %d has no timestamp", i)
		}
	}
	if st := r.Stats(); st.Recorded != 3 || st.Retained != 3 || st.Pinned != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTailRetentionPinsInterestingEvents(t *testing.T) {
	obs := NewObs(telemetry.NewRegistry())
	r := New(Config{Size: 4, TailSize: 8, Obs: obs})
	// One error early, then a flood of routine traffic far larger than the
	// routine ring: the error must survive.
	r.Record(reqEvent("/v1/uploads", 503, time.Millisecond))
	for i := 0; i < 100; i++ {
		r.Record(reqEvent("/healthz", 200, time.Millisecond))
	}
	evs := r.Snapshot(Filter{})
	if len(evs) != 5 { // 4 routine + 1 pinned
		t.Fatalf("retained %d events, want 5", len(evs))
	}
	if evs[0].Seq != 1 || evs[0].Status != 503 || evs[0].Outcome != OutcomeError {
		t.Fatalf("pinned event lost: first retained = %+v", evs[0])
	}
	// The merge preserves ascending sequence order.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	if obs.Pinned.Value() != 1 {
		t.Fatalf("pinned counter = %d", obs.Pinned.Value())
	}
	if obs.EvictedRoutine.Value() != 100-4 {
		t.Fatalf("routine evictions = %d, want 96", obs.EvictedRoutine.Value())
	}
	if obs.Recorded.Value() != 101 {
		t.Fatalf("recorded = %d", obs.Recorded.Value())
	}
}

func TestTailRingEvictsOldestInteresting(t *testing.T) {
	obs := NewObs(telemetry.NewRegistry())
	r := New(Config{Size: 4, TailSize: 2, Obs: obs})
	for i := 0; i < 5; i++ {
		r.Record(reqEvent("/v1/trace", 500, time.Millisecond))
	}
	out := OutcomeError
	evs := r.Snapshot(Filter{Outcome: &out})
	if len(evs) != 2 {
		t.Fatalf("tail retained %d, want 2", len(evs))
	}
	if evs[0].Seq != 4 || evs[1].Seq != 5 {
		t.Fatalf("tail kept seqs %d,%d; want 4,5", evs[0].Seq, evs[1].Seq)
	}
	if obs.EvictedTail.Value() != 3 {
		t.Fatalf("tail evictions = %d, want 3", obs.EvictedTail.Value())
	}
}

func TestDegradedAndFaultedEventsArePinned(t *testing.T) {
	r := New(Config{Size: 2, TailSize: 8})
	r.Record(Event{Kind: KindRequest, Route: "/v1/model", Status: 204, Degraded: true})
	r.Record(Event{Kind: KindJob, Route: "job.trace", Faults: 2})
	r.Record(Event{Kind: KindWAL, Route: "store.append", Outcome: OutcomeError, Err: "injected"})
	for i := 0; i < 50; i++ {
		r.Record(reqEvent("/healthz", 200, time.Microsecond))
	}
	if st := r.Stats(); st.Pinned != 3 {
		t.Fatalf("pinned = %d, want 3 (degraded, faulted, WAL error)", st.Pinned)
	}
}

func TestSlowDetectionPinsTailLatency(t *testing.T) {
	r := New(Config{Size: 256, TailSize: 16, SlowMinSamples: 32})
	// Build a tight latency profile, then send one extreme outlier.
	for i := 0; i < 200; i++ {
		r.Record(reqEvent("/v1/predict", 200, 500*time.Microsecond))
	}
	r.Record(reqEvent("/v1/predict", 200, 2*time.Second))
	out := OutcomeSlow
	slow := r.Snapshot(Filter{Outcome: &out})
	if len(slow) != 1 {
		t.Fatalf("slow events = %d, want exactly the outlier", len(slow))
	}
	if slow[0].DurationNs != int64(2*time.Second) {
		t.Fatalf("pinned the wrong event: %+v", slow[0])
	}
	if st := r.Stats(); st.Pinned != 1 {
		t.Fatalf("pinned = %d", st.Pinned)
	}
}

func TestSlowDetectionNeedsSamples(t *testing.T) {
	r := New(Config{Size: 64, TailSize: 8, SlowMinSamples: 32})
	// Far fewer samples than the activation floor: nothing may be called
	// slow yet, however extreme.
	r.Record(reqEvent("/v1/trace", 200, time.Millisecond))
	r.Record(reqEvent("/v1/trace", 200, 10*time.Second))
	if st := r.Stats(); st.Pinned != 0 {
		t.Fatalf("pinned = %d before the classifier had samples", st.Pinned)
	}
}

func TestSnapshotFilters(t *testing.T) {
	r := New(Config{Size: 64, TailSize: 16})
	r.Record(reqEvent("/a", 200, 1*time.Millisecond))
	r.Record(reqEvent("/b", 503, 2*time.Millisecond))
	r.Record(Event{Kind: KindRound, Route: "/v1/rounds", Status: 200, DurationNs: int64(5 * time.Millisecond), Aux: 7})
	r.Record(reqEvent("/c", 404, 3*time.Millisecond))

	if got := r.Snapshot(Filter{Since: 2}); len(got) != 2 || got[0].Seq != 3 {
		t.Fatalf("since=2: %+v", got)
	}
	if got := r.Snapshot(Filter{MinDuration: 3 * time.Millisecond}); len(got) != 2 {
		t.Fatalf("min_latency: %+v", got)
	}
	out := OutcomeRejected
	if got := r.Snapshot(Filter{Outcome: &out}); len(got) != 1 || got[0].Status != 404 {
		t.Fatalf("outcome=rejected: %+v", got)
	}
	if got := r.Snapshot(Filter{Kind: KindRound}); len(got) != 1 || got[0].Aux != 7 {
		t.Fatalf("kind=round: %+v", got)
	}
	if got := r.Snapshot(Filter{Limit: 2}); len(got) != 2 || got[1].Seq != 4 {
		t.Fatalf("limit=2 keeps newest: %+v", got)
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Record(reqEvent("/x", 200, time.Millisecond))
	if got := r.Snapshot(Filter{}); got != nil {
		t.Fatalf("nil recorder snapshot = %v", got)
	}
	if st := r.Stats(); st != (Stats{}) {
		t.Fatalf("nil recorder stats = %+v", st)
	}
}

func TestOutcomeStringRoundTrip(t *testing.T) {
	for _, o := range []Outcome{OutcomeOK, OutcomeError, OutcomeRejected, OutcomeSlow, OutcomeDegraded} {
		got, ok := ParseOutcome(o.String())
		if !ok || got != o {
			t.Fatalf("outcome %d round-tripped to %d (ok=%v)", o, got, ok)
		}
	}
	if _, ok := ParseOutcome("nope"); ok {
		t.Fatal("ParseOutcome accepted garbage")
	}
}

func TestConcurrentRecordAndSnapshot(t *testing.T) {
	r := New(Config{Size: 128, TailSize: 32})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			route := fmt.Sprintf("/r%d", g)
			for i := 0; i < 500; i++ {
				status := 200
				if i%50 == 0 {
					status = 500
				}
				r.Record(reqEvent(route, status, time.Duration(i)*time.Microsecond))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			_ = r.Snapshot(Filter{Limit: 32})
			_ = r.Stats()
		}
		close(done)
	}()
	wg.Wait()
	<-done
	if st := r.Stats(); st.Recorded != 8*500 {
		t.Fatalf("recorded = %d, want %d", st.Recorded, 8*500)
	}
	// Sequence numbers in a snapshot stay strictly ascending under
	// concurrency.
	evs := r.Snapshot(Filter{})
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot out of order at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// TestRecordSteadyStateZeroAlloc pins the tentpole cost contract: the
// enabled recorder's routine Record path allocates nothing once the route
// is known, and a nil recorder allocates nothing ever.
func TestRecordSteadyStateZeroAlloc(t *testing.T) {
	r := New(Config{Size: 256, TailSize: 32, Obs: NewObs(telemetry.NewRegistry())})
	ev := reqEvent("/v1/predict", 200, time.Millisecond)
	ev.RequestID = "abcdef0123456789"
	r.Record(ev) // allocate the route's latency tracker up front
	if allocs := testing.AllocsPerRun(100, func() { r.Record(ev) }); allocs != 0 {
		t.Fatalf("enabled steady-state Record allocates %v times per call", allocs)
	}
	var nilRec *Recorder
	if allocs := testing.AllocsPerRun(100, func() { nilRec.Record(ev) }); allocs != 0 {
		t.Fatalf("nil recorder Record allocates %v times per call", allocs)
	}
}

func BenchmarkFlightRecord(b *testing.B) {
	r := New(Config{Size: 1024, TailSize: 256, Obs: NewObs(telemetry.NewRegistry())})
	ev := reqEvent("/v1/predict", 200, time.Millisecond)
	ev.RequestID = "abcdef0123456789"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(ev)
	}
}

func BenchmarkFlightRecordDisabled(b *testing.B) {
	var r *Recorder
	ev := reqEvent("/v1/predict", 200, time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(ev)
	}
}

func BenchmarkFlightSnapshot(b *testing.B) {
	r := New(Config{Size: 1024, TailSize: 256})
	for i := 0; i < 2048; i++ {
		status := 200
		if i%64 == 0 {
			status = 500
		}
		r.Record(reqEvent("/v1/predict", status, time.Millisecond))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot(Filter{Limit: 256})
	}
}
