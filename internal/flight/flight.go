// Package flight is the service's always-on flight recorder: one wide,
// structured event per unit of work (HTTP request, trace job, round
// ingest, WAL append failure) held in fixed-size rings with tail-based
// retention. Metrics answer "how fast is the service"; the flight
// recorder answers "why was *this* request slow" — each event carries the
// route, status, latency, byte counts, retry/fault counters, cache-hit
// flag, degraded-mode flag, and the request id that keys the span tree in
// the telemetry SpanLog.
//
// Retention is tail-based: routine events (success at routine latency) go
// into a large ring that overwrites freely, while *interesting* events —
// errors, rejections, p99-slow requests, anything that ran degraded or
// absorbed an injected fault — are pinned in a separate tail ring that
// only interesting events can evict. A burst of healthy traffic therefore
// never flushes the evidence of the incident that preceded it.
//
// Slow detection is self-calibrating: the recorder keeps a per-route
// fixed-bucket latency histogram (the telemetry duration buckets) and
// pins any event whose latency lands beyond the route's current p99
// bucket once the route has seen enough samples to estimate one.
//
// Cost discipline matches the rest of the repo's instruments: a nil
// *Recorder is a no-op costing one pointer check, and the enabled
// steady-state Record path allocates nothing (pinned by
// TestRecordSteadyStateZeroAlloc) — events are values copied into
// preallocated ring slots under one short mutex hold.
package flight

import (
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Kind classifies the unit of work an event describes.
type Kind uint8

const (
	// KindRequest is one HTTP request through the route middleware.
	KindRequest Kind = 1
	// KindJob is one trace job reaching a terminal state.
	KindJob Kind = 2
	// KindRound is one round-update ingest through POST /v1/rounds.
	KindRound Kind = 3
	// KindWAL is one WAL append failure or degraded-mode transition.
	KindWAL Kind = 4
	// KindCluster is one replication or failover transition: a follower
	// resync, a leader push failure, or a promotion.
	KindCluster Kind = 5
	// KindGate is one contribution-gate transition: a participant excluded
	// from (or readmitted to) aggregation by the ContAvg defense.
	KindGate Kind = 6
)

// String renders the kind for JSON and terminal views.
func (k Kind) String() string {
	switch k {
	case KindRequest:
		return "request"
	case KindJob:
		return "job"
	case KindRound:
		return "round"
	case KindWAL:
		return "wal"
	case KindCluster:
		return "cluster"
	case KindGate:
		return "gate"
	default:
		return "unknown"
	}
}

// Outcome is the event's one-word verdict.
type Outcome uint8

const (
	// OutcomeOK is a routine success.
	OutcomeOK Outcome = 0
	// OutcomeError is a server-side failure (5xx, failed job, WAL error).
	OutcomeError Outcome = 1
	// OutcomeRejected is a client-attributable rejection (4xx).
	OutcomeRejected Outcome = 2
	// OutcomeSlow is a success whose latency crossed the route's p99.
	OutcomeSlow Outcome = 3
	// OutcomeDegraded is work served while the server was degraded.
	OutcomeDegraded Outcome = 4
)

// String renders the outcome for JSON, filters, and terminal views.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeError:
		return "error"
	case OutcomeRejected:
		return "rejected"
	case OutcomeSlow:
		return "slow"
	case OutcomeDegraded:
		return "degraded"
	default:
		return "unknown"
	}
}

// ParseOutcome maps the string form back to the enum; ok reports success.
func ParseOutcome(s string) (Outcome, bool) {
	switch s {
	case "ok":
		return OutcomeOK, true
	case "error":
		return OutcomeError, true
	case "rejected":
		return OutcomeRejected, true
	case "slow":
		return OutcomeSlow, true
	case "degraded":
		return OutcomeDegraded, true
	default:
		return 0, false
	}
}

// Event is one wide event. Events are plain values: the recorder copies
// them into ring slots and hands copies back out, so callers never share
// mutable state with the ring.
type Event struct {
	// Seq is the recorder-assigned monotone sequence number (1-based);
	// GET /v1/events?since= filters on it.
	Seq uint64
	// Unix is the event completion time in nanoseconds since the epoch.
	Unix int64
	// Kind classifies the unit of work; Outcome is its verdict.
	Kind    Kind
	Outcome Outcome
	// Status is the HTTP status answered (0 for non-HTTP kinds).
	Status int32
	// Route is the route pattern (requests), job kind (jobs), or site
	// (WAL events); Method is the HTTP method, "" for non-HTTP kinds.
	Route  string
	Method string
	// RequestID is the span-tree reference: the same id stamps the root
	// span in GET /v1/traces/recent and the X-Request-Id response header.
	RequestID string
	// DurationNs is the unit's wall time in nanoseconds.
	DurationNs int64
	// BytesIn / BytesOut are request/response body sizes where known.
	BytesIn  int64
	BytesOut int64
	// Retries counts re-runs absorbed by the unit (job attempts beyond
	// the first); Faults counts injected faults it observed.
	Retries int32
	Faults  int32
	// Aux is kind-specific detail: the round number for KindRound events,
	// consecutive WAL failures for KindWAL, otherwise 0.
	Aux int64
	// CacheHit marks work served from a result cache.
	CacheHit bool
	// Degraded marks work performed while the server was degraded.
	Degraded bool
	// Err is a short error detail for tail events ("" on success).
	Err string
}

// interesting reports whether the event must be pinned in the tail ring:
// any non-OK outcome, degraded-mode work, observed faults, absorbed
// retries, or an error detail. A success that needed retries still carries
// incident evidence, so it is retained alongside outright failures.
func (e *Event) interesting() bool {
	return e.Outcome != OutcomeOK || e.Degraded || e.Faults > 0 || e.Retries > 0 || e.Err != ""
}

// Obs is the recorder's instrument set; nil-safe like every other Obs in
// the repo.
type Obs struct {
	// Recorded counts every event accepted; Pinned counts events retained
	// in the tail ring.
	Recorded *telemetry.Counter
	Pinned   *telemetry.Counter
	// EvictedRoutine / EvictedTail count ring overwrites by class.
	EvictedRoutine *telemetry.Counter
	EvictedTail    *telemetry.Counter
}

// NewObs registers the flight-recorder metric family on r.
func NewObs(r *telemetry.Registry) *Obs {
	return &Obs{
		Recorded: r.Counter("ctfl_flight_events_total", "wide events recorded by the flight recorder"),
		Pinned:   r.Counter("ctfl_flight_pinned_total", "events pinned in the tail ring (errors, p99-slow, degraded)"),
		EvictedRoutine: r.Counter(`ctfl_flight_evicted_total{ring="routine"}`,
			"events overwritten in the routine ring"),
		EvictedTail: r.Counter(`ctfl_flight_evicted_total{ring="tail"}`,
			"events overwritten in the tail ring"),
	}
}

// Config tunes a Recorder. The zero value gets production defaults.
type Config struct {
	// Size is the routine ring capacity (default 1024).
	Size int
	// TailSize is the pinned tail ring capacity (default 256).
	TailSize int
	// SlowMinSamples is how many latency samples a route needs before the
	// p99-slow classifier activates for it (default 64).
	SlowMinSamples int
	// Obs receives recorder telemetry; nil disables it.
	Obs *Obs
}

// ring is a fixed-capacity overwrite ring of events, oldest-first readable.
type ring struct {
	buf   []Event
	next  int
	count int
}

func (r *ring) add(ev Event) (evicted bool) {
	evicted = r.count == len(r.buf)
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	if !evicted {
		r.count++
	}
	return evicted
}

// appendAll appends the ring's events oldest-first to dst.
func (r *ring) appendAll(dst []Event) []Event {
	start := r.next - r.count
	for i := 0; i < r.count; i++ {
		dst = append(dst, r.buf[(start+i+len(r.buf))%len(r.buf)])
	}
	return dst
}

// numLatencyBuckets is the per-route latency profile size: the telemetry
// duration buckets plus the overflow bucket.
const numLatencyBuckets = 17

// routeLatency is one route's latency profile for p99-slow detection.
type routeLatency struct {
	counts [numLatencyBuckets]int64
	total  int64
}

// durationBoundsNs mirrors telemetry.DurationBuckets in nanoseconds.
var durationBoundsNs = func() []int64 {
	out := make([]int64, len(telemetry.DurationBuckets))
	for i, b := range telemetry.DurationBuckets {
		out[i] = int64(b * float64(time.Second))
	}
	if len(out)+1 != numLatencyBuckets {
		panic("flight: numLatencyBuckets out of sync with telemetry.DurationBuckets")
	}
	return out
}()

// observe records one latency and reports whether it exceeded the route's
// p99 estimate (only once minSamples have accumulated). The estimate is
// the upper bound of the bucket containing the 99th percentile, so "slow"
// means "beyond where 99% of this route's traffic has landed".
func (rl *routeLatency) observe(durNs int64, minSamples int) bool {
	slow := false
	if rl.total >= int64(minSamples) {
		rank := rl.total - rl.total/100 // ceil(0.99 * total) for total >= 100; close enough below
		var cum int64
		for i, c := range rl.counts {
			cum += c
			if cum >= rank {
				if i < len(durationBoundsNs) {
					slow = durNs > durationBoundsNs[i]
				}
				// The overflow bucket has no upper bound: nothing beyond it.
				break
			}
		}
	}
	i := 0
	for i < len(durationBoundsNs) && durNs > durationBoundsNs[i] {
		i++
	}
	rl.counts[i]++
	rl.total++
	return slow
}

// Recorder is the flight recorder. A nil *Recorder is a no-op on every
// method; construct with New.
type Recorder struct {
	mu             sync.Mutex
	seq            uint64
	routine        ring
	tail           ring
	routes         map[string]*routeLatency
	slowMinSamples int
	obs            *Obs
}

// inertObs keeps the nil-Obs path allocation- and branch-free.
var inertObs = &Obs{}

// New builds a recorder. cfg.Size/TailSize below 1 take the defaults.
func New(cfg Config) *Recorder {
	if cfg.Size < 1 {
		cfg.Size = 1024
	}
	if cfg.TailSize < 1 {
		cfg.TailSize = 256
	}
	if cfg.SlowMinSamples < 1 {
		cfg.SlowMinSamples = 64
	}
	obs := cfg.Obs
	if obs == nil {
		obs = inertObs
	}
	return &Recorder{
		routine:        ring{buf: make([]Event, cfg.Size)},
		tail:           ring{buf: make([]Event, cfg.TailSize)},
		routes:         make(map[string]*routeLatency),
		slowMinSamples: cfg.SlowMinSamples,
		obs:            obs,
	}
}

// Record accepts one event: stamps its sequence number and time (when
// unset), classifies it (a routine success beyond the route's p99 becomes
// OutcomeSlow), and files it in the matching ring. Steady-state calls
// allocate nothing; a nil recorder does nothing.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	ev.Seq = r.seq
	if ev.Unix == 0 {
		ev.Unix = time.Now().UnixNano()
	}
	if ev.Kind == KindRequest && ev.DurationNs > 0 {
		rl := r.routes[ev.Route]
		if rl == nil {
			rl = new(routeLatency)
			r.routes[ev.Route] = rl
		}
		if rl.observe(ev.DurationNs, r.slowMinSamples) && ev.Outcome == OutcomeOK {
			ev.Outcome = OutcomeSlow
		}
	}
	if ev.interesting() {
		if r.tail.add(ev) {
			r.obs.EvictedTail.Inc()
		}
		r.obs.Pinned.Inc()
	} else {
		if r.routine.add(ev) {
			r.obs.EvictedRoutine.Inc()
		}
	}
	r.obs.Recorded.Inc()
	r.mu.Unlock()
}

// Filter selects events out of a snapshot. The zero value matches all.
type Filter struct {
	// Since keeps only events with Seq > Since.
	Since uint64
	// MinDuration keeps only events at least this slow.
	MinDuration time.Duration
	// Outcome keeps only events with this outcome (nil = all).
	Outcome *Outcome
	// Kind keeps only events of this kind (0 = all).
	Kind Kind
	// Limit keeps only the newest Limit matches (0 = all).
	Limit int
}

func (f Filter) match(ev *Event) bool {
	if ev.Seq <= f.Since {
		return false
	}
	if f.MinDuration > 0 && ev.DurationNs < int64(f.MinDuration) {
		return false
	}
	if f.Outcome != nil && ev.Outcome != *f.Outcome {
		return false
	}
	if f.Kind != 0 && ev.Kind != f.Kind {
		return false
	}
	return true
}

// Stats summarizes the recorder's lifetime accounting.
type Stats struct {
	// Recorded counts every event accepted; Seq is the last sequence
	// number assigned (equal to Recorded).
	Recorded uint64 `json:"recorded"`
	// Retained counts events currently held across both rings.
	Retained int `json:"retained"`
	// Pinned counts events currently held in the tail ring.
	Pinned int `json:"pinned"`
}

// Stats reports the recorder's accounting; a nil recorder reports zeros.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Recorded: r.seq,
		Retained: r.routine.count + r.tail.count,
		Pinned:   r.tail.count,
	}
}

// Snapshot returns the retained events matching f, in ascending sequence
// order (routine and tail interleaved as they happened). A nil recorder
// returns nil.
func (r *Recorder) Snapshot(f Filter) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	routine := r.routine.appendAll(make([]Event, 0, r.routine.count))
	tail := r.tail.appendAll(make([]Event, 0, r.tail.count))
	r.mu.Unlock()

	// Merge two seq-ascending runs, applying the filter inline.
	out := make([]Event, 0, len(routine)+len(tail))
	i, j := 0, 0
	for i < len(routine) || j < len(tail) {
		var ev Event
		if j >= len(tail) || (i < len(routine) && routine[i].Seq < tail[j].Seq) {
			ev = routine[i]
			i++
		} else {
			ev = tail[j]
			j++
		}
		if f.match(&ev) {
			out = append(out, ev)
		}
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}
