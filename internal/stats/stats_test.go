package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGammaMeanVariance(t *testing.T) {
	// Gamma(k,1) has mean k and variance k.
	r := NewRNG(7)
	for _, shape := range []float64{0.3, 0.7, 1.0, 2.5, 9.0} {
		const n = 20000
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			x := Gamma(r, shape)
			if x < 0 {
				t.Fatalf("Gamma(%v) produced negative sample %v", shape, x)
			}
			sum += x
			sumsq += x * x
		}
		mean := sum / n
		variance := sumsq/n - mean*mean
		if math.Abs(mean-shape) > 0.1*shape+0.05 {
			t.Errorf("Gamma(%v): mean = %v, want ≈ %v", shape, mean, shape)
		}
		if math.Abs(variance-shape) > 0.25*shape+0.1 {
			t.Errorf("Gamma(%v): var = %v, want ≈ %v", shape, variance, shape)
		}
	}
}

func TestGammaInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive shape")
		}
	}()
	Gamma(NewRNG(1), 0)
}

func TestDirichletSumsToOne(t *testing.T) {
	r := NewRNG(3)
	for _, n := range []int{1, 2, 8, 50} {
		for _, alpha := range []float64{0.1, 0.6, 1.0, 10} {
			p := Dirichlet(r, n, alpha)
			if len(p) != n {
				t.Fatalf("Dirichlet length = %d, want %d", len(p), n)
			}
			sum := 0.0
			for _, v := range p {
				if v < 0 {
					t.Fatalf("negative Dirichlet component %v", v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("Dirichlet(n=%d, a=%v) sums to %v", n, alpha, sum)
			}
		}
	}
}

func TestDirichletSkewIncreasesAsAlphaDecreases(t *testing.T) {
	r := NewRNG(11)
	spread := func(alpha float64) float64 {
		// average max-min spread over many draws
		total := 0.0
		const reps = 300
		for i := 0; i < reps; i++ {
			p := Dirichlet(r, 8, alpha)
			lo, hi := MinMax(p)
			total += hi - lo
		}
		return total / reps
	}
	if s01, s10 := spread(0.1), spread(10); s01 <= s10 {
		t.Fatalf("low alpha should be more skewed: spread(0.1)=%v spread(10)=%v", s01, s10)
	}
}

func TestDirichletInvalidArgsPanic(t *testing.T) {
	r := NewRNG(1)
	for _, fn := range []func(){
		func() { Dirichlet(r, 0, 1) },
		func() { Dirichlet(r, 3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMeanStdSum(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Std(xs); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Std = %v, want 2", got)
	}
	if got := Sum(xs); got != 40 {
		t.Fatalf("Sum = %v, want 40", got)
	}
	if Mean(nil) != 0 || Std(nil) != 0 || Std([]float64{1}) != 0 {
		t.Fatal("degenerate inputs should return 0")
	}
}

func TestMinMaxClip(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = (%v,%v)", lo, hi)
	}
	if Clip(5, 0, 1) != 1 || Clip(-5, 0, 1) != 0 || Clip(0.5, 0, 1) != 0.5 {
		t.Fatal("Clip misbehaves")
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{1, 3}
	sum := Normalize(xs)
	if sum != 4 || xs[0] != 0.25 || xs[1] != 0.75 {
		t.Fatalf("Normalize: sum=%v xs=%v", sum, xs)
	}
	zeros := []float64{0, 0}
	Normalize(zeros)
	if zeros[0] != 0 || zeros[1] != 0 {
		t.Fatal("Normalize should leave all-zero input unchanged")
	}
}

func TestSpearmanPerfectAndInverse(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yUp := []float64{10, 20, 30, 40, 50}
	yDown := []float64{5, 4, 3, 2, 1}
	if got := Spearman(x, yUp); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Spearman monotone = %v, want 1", got)
	}
	if got := Spearman(x, yDown); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Spearman inverse = %v, want -1", got)
	}
	if got := Spearman(x, []float64{7, 7, 7, 7, 7}); got != 0 {
		t.Fatalf("Spearman vs constant = %v, want 0", got)
	}
}

func TestSpearmanHandlesTies(t *testing.T) {
	x := []float64{1, 2, 2, 3}
	y := []float64{1, 2, 2, 3}
	if got := Spearman(x, y); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Spearman with matching ties = %v, want 1", got)
	}
}

func TestKendall(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := Kendall(x, []float64{1, 2, 3, 4}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Kendall identical = %v, want 1", got)
	}
	if got := Kendall(x, []float64{4, 3, 2, 1}); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Kendall reversed = %v, want -1", got)
	}
	if got := Kendall(x, []float64{2, 2, 2, 2}); got != 0 {
		t.Fatalf("Kendall vs constant = %v, want 0", got)
	}
}

func TestAUC(t *testing.T) {
	if got := AUC([]float64{1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("AUC flat = %v, want 1", got)
	}
	if got := AUC([]float64{0, 1}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("AUC ramp = %v, want 0.5", got)
	}
	if got := AUC([]float64{0.9}); got != 0.9 {
		t.Fatalf("AUC single = %v", got)
	}
	if got := AUC(nil); got != 0 {
		t.Fatalf("AUC empty = %v", got)
	}
}

func TestArgsortDesc(t *testing.T) {
	idx := ArgsortDesc([]float64{0.5, 0.9, 0.1, 0.9})
	// Descending with stable tie-break by index: 1 (0.9), 3 (0.9), 0, 2.
	want := []int{1, 3, 0, 2}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("ArgsortDesc = %v, want %v", idx, want)
		}
	}
}

func TestPropertySpearmanBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(seed)
		n := 2 + r.Intn(30)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i], y[i] = r.Float64(), r.Float64()
		}
		s := Spearman(x, y)
		k := Kendall(x, y)
		return s >= -1-1e-9 && s <= 1+1e-9 && k >= -1-1e-9 && k <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySpearmanInvariantToMonotoneTransform(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(seed)
		n := 3 + r.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		y2 := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()
			y[i] = r.Float64()
			y2[i] = math.Exp(3 * y[i]) // strictly monotone transform
		}
		return math.Abs(Spearman(x, y)-Spearman(x, y2)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("median = %v, want 2.5", got)
	}
	if got := Quantile([]float64{7}, 0.3); got != 7 {
		t.Fatalf("single = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty quantile should panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestPairedTTest(t *testing.T) {
	// Constant positive difference with small jitter → large positive t.
	a := []float64{1.1, 1.22, 1.31, 1.18, 1.25}
	b := []float64{1.0, 1.10, 1.20, 1.10, 1.15}
	tStat, df := PairedTTest(a, b)
	if df != 4 {
		t.Fatalf("df = %d", df)
	}
	if tStat < 5 {
		t.Fatalf("t = %v, want strongly positive", tStat)
	}
	// Symmetric: swapping arguments flips the sign.
	tRev, _ := PairedTTest(b, a)
	if math.Abs(tStat+tRev) > 1e-12 {
		t.Fatalf("asymmetric: %v vs %v", tStat, tRev)
	}
	// Identical vectors → zero-variance guard.
	if ts, d := PairedTTest(a, a); ts != 0 || d != 0 {
		t.Fatalf("identical inputs: t=%v df=%d", ts, d)
	}
	// Too few samples.
	if ts, d := PairedTTest([]float64{1}, []float64{2}); ts != 0 || d != 0 {
		t.Fatalf("n=1: t=%v df=%d", ts, d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	PairedTTest(a, b[:2])
}

func TestShuffleAndPermArePermutations(t *testing.T) {
	r := NewRNG(5)
	idx := []int{0, 1, 2, 3, 4, 5, 6}
	Shuffle(r, idx)
	seen := make(map[int]bool)
	for _, v := range idx {
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Shuffle lost elements: %v", idx)
	}
	p := Perm(r, 10)
	seen = make(map[int]bool)
	for _, v := range p {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Perm not a permutation: %v", p)
	}
}
