// Package stats bundles the numerical utilities the rest of the repository
// needs: reproducible random sampling (uniform, normal, Gamma, Dirichlet),
// descriptive statistics, rank correlations used to compare contribution
// rankings against ground truth, and area-under-curve summaries for the
// remove-top-k accuracy curves of the paper's Fig. 4.
package stats

import (
	"math"
	"math/rand"
)

// NewRNG returns a deterministic *rand.Rand for the given seed. Every
// experiment in this repository threads explicit RNGs so results are
// reproducible run to run.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Gamma draws one sample from the Gamma(shape, 1) distribution using the
// Marsaglia–Tsang method, which is exact for shape >= 1 and boosted with the
// standard x*U^(1/shape) transform for shape < 1.
func Gamma(r *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		panic("stats: Gamma shape must be positive")
	}
	if shape < 1 {
		// Boost: if X ~ Gamma(shape+1) and U ~ Uniform(0,1),
		// then X * U^(1/shape) ~ Gamma(shape).
		return Gamma(r, shape+1) * math.Pow(r.Float64(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet draws one sample from the symmetric Dirichlet(alpha) distribution
// over n categories. The returned slice has length n and sums to 1. The
// paper's skew-sample and skew-label partitioners use this to draw client
// data ratios; smaller alpha means more skew.
func Dirichlet(r *rand.Rand, n int, alpha float64) []float64 {
	if n <= 0 {
		panic("stats: Dirichlet needs n > 0")
	}
	if alpha <= 0 {
		panic("stats: Dirichlet alpha must be positive")
	}
	out := make([]float64, n)
	sum := 0.0
	for i := range out {
		out[i] = Gamma(r, alpha)
		sum += out[i]
	}
	if sum == 0 {
		// Vanishingly unlikely; fall back to uniform to avoid NaNs.
		for i := range out {
			out[i] = 1 / float64(n)
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Shuffle permutes idx in place with Fisher-Yates.
func Shuffle(r *rand.Rand, idx []int) {
	r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
}

// Perm returns a random permutation of [0,n).
func Perm(r *rand.Rand, n int) []int {
	return r.Perm(n)
}
