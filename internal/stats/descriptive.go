package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation of xs, or 0 when len < 2.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// MinMax returns the smallest and largest element of xs.
// It panics on an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Clip limits x to the interval [lo, hi].
func Clip(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Normalize scales xs in place so it sums to 1. All-zero input is left
// untouched. Returns the original sum.
func Normalize(xs []float64) float64 {
	s := Sum(xs)
	if s != 0 {
		for i := range xs {
			xs[i] /= s
		}
	}
	return s
}

// ranks assigns fractional ranks (average rank for ties), 1-based.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	rk := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			rk[idx[k]] = avg
		}
		i = j + 1
	}
	return rk
}

// Spearman returns the Spearman rank correlation between xs and ys.
// It panics if the slices differ in length, and returns 0 when either
// input is constant (undefined correlation).
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Spearman length mismatch")
	}
	if len(xs) < 2 {
		return 0
	}
	return pearson(ranks(xs), ranks(ys))
}

func pearson(xs, ys []float64) float64 {
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Kendall returns the Kendall tau-b rank correlation between xs and ys,
// which handles ties in either argument. It returns 0 when undefined.
func Kendall(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Kendall length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	var concordant, discordant, tiesX, tiesY float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := xs[i] - xs[j]
			dy := ys[i] - ys[j]
			switch {
			case dx == 0 && dy == 0:
				// tied in both; contributes to neither denominator term
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case dx*dy > 0:
				concordant++
			default:
				discordant++
			}
		}
	}
	den := math.Sqrt((concordant + discordant + tiesX) * (concordant + discordant + tiesY))
	if den == 0 {
		return 0
	}
	return (concordant - discordant) / den
}

// AUC returns the area under a piecewise-linear curve given by equally
// spaced y samples (trapezoid rule, unit spacing between points, normalized
// by the span so the result is the mean height). This is the "area under the
// model accuracy curve" summary used for the paper's Fig. 4: smaller is a
// better contribution estimate.
func AUC(ys []float64) float64 {
	n := len(ys)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return ys[0]
	}
	area := 0.0
	for i := 1; i < n; i++ {
		area += (ys[i-1] + ys[i]) / 2
	}
	return area / float64(n-1)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation between order statistics. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	q = Clip(q, 0, 1)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo == len(sorted)-1 {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// PairedTTest computes the paired t statistic for the differences a[i]-b[i]
// and returns (t, degrees of freedom). A large |t| at n-1 degrees of freedom
// indicates the two methods' per-repetition measurements differ
// systematically (used to compare AUCs across experiment repetitions).
// It panics on mismatched lengths and returns (0, 0) for n < 2 or when all
// differences are identical (zero variance).
func PairedTTest(a, b []float64) (tStat float64, df int) {
	if len(a) != len(b) {
		panic("stats: PairedTTest length mismatch")
	}
	n := len(a)
	if n < 2 {
		return 0, 0
	}
	diffs := make([]float64, n)
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	mean := Mean(diffs)
	ss := 0.0
	for _, d := range diffs {
		ss += (d - mean) * (d - mean)
	}
	sd := math.Sqrt(ss / float64(n-1))
	if sd == 0 {
		return 0, 0
	}
	return mean / (sd / math.Sqrt(float64(n))), n - 1
}

// ArgsortDesc returns the indices of xs sorted by descending value.
// Ties break by ascending index so the order is deterministic.
func ArgsortDesc(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	return idx
}
