// Command ctfl reproduces the paper's experiments from the command line.
//
// Usage:
//
//	ctfl datasets                      list the benchmark generators
//	ctfl run table2 [flags]            Table II motivating example
//	ctfl run fig4   [flags]            remove-top-contributors curves
//	ctfl run fig5   [flags]            execution-time comparison
//	ctfl run fig6   [flags]            robustness to adverse behaviours
//	ctfl run fig7   [flags]            tic-tac-toe interpretability study
//	ctfl run tablev [flags]            adult interpretability study
//	ctfl run all    [flags]            everything above
//	ctfl bench [flags]                 hot-path benchmarks -> JSON report
//
// Common flags (after the experiment name):
//
//	-dataset name   benchmark for fig4/fig5/fig6 (default: all four)
//	-rows n         rows per generated dataset (0 = paper's full size)
//	-n k            participants (default 8)
//	-seed s         RNG seed (default 1)
//	-skew mode      sample | label | both (default both)
//	-full           include ShapleyValue and LeastCore everywhere
//	                (they are skipped on dota2 by default, as in the paper)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "ctfl: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return nil
	}
	switch args[0] {
	case "datasets":
		return cmdDatasets()
	case "run":
		if len(args) < 2 {
			return fmt.Errorf("run: missing experiment name (table2|fig4|fig5|fig6|fig7|tablev|ablation|quality|defense|all)")
		}
		return cmdRun(args[1], args[2:])
	case "bench":
		return cmdBench(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func usage() {
	fmt.Println(`ctfl — CTFL experiment runner (ICDE 2024 reproduction)

commands:
  ctfl datasets             list benchmark datasets
  ctfl run <experiment>     table2 | fig4 | fig5 | fig6 | fig7 | tablev |
                            ablation | quality | defense | all
  ctfl bench                run the hot-path benchmarks and emit a JSON
                            report (-before <saved output> for speedups,
                            -o BENCH_1.json to persist)
  ctfl help                 this message

run flags: -dataset -rows -n -seed -skew -full (see -h of each run)`)
}

func cmdDatasets() error {
	t := experiments.NewTable("benchmark datasets (paper Table IV)",
		"dataset", "#-instances", "#-features", "source")
	for _, b := range dataset.Benchmarks() {
		src := "synthetic stand-in (planted rules; see DESIGN.md)"
		if b.Name == "tic-tac-toe" {
			src = "exact regeneration by game-tree enumeration"
		}
		t.AddRow(b.Name, fmt.Sprintf("%d", b.FullSize), b.FeatureNote, src)
	}
	t.Render(os.Stdout)
	return nil
}

type runFlags struct {
	dataset string
	rows    int
	n       int
	seed    int64
	skew    string
	full    bool
	topK    int
	rounds  int
	epochs  int
	repeats int
}

func parseRunFlags(name string, args []string) (*runFlags, error) {
	fs := flag.NewFlagSet("run "+name, flag.ContinueOnError)
	rf := &runFlags{}
	fs.StringVar(&rf.dataset, "dataset", "", "benchmark name (default: all four)")
	fs.IntVar(&rf.rows, "rows", 1500, "generated rows per dataset (0 = paper full size)")
	fs.IntVar(&rf.n, "n", 8, "number of participants")
	fs.Int64Var(&rf.seed, "seed", 1, "RNG seed")
	fs.StringVar(&rf.skew, "skew", "both", "data distribution: sample | label | both")
	fs.BoolVar(&rf.full, "full", false, "include ShapleyValue/LeastCore on every dataset")
	fs.IntVar(&rf.topK, "topk", 5, "participants to remove in fig4")
	fs.IntVar(&rf.rounds, "rounds", 0, "FedAvg rounds (0 = default)")
	fs.IntVar(&rf.epochs, "epochs", 0, "local epochs per round (0 = default)")
	fs.IntVar(&rf.repeats, "repeats", 3, "repetitions averaged in fig4/fig6 (paper uses 10)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return rf, nil
}

func (rf *runFlags) datasets() []string {
	if rf.dataset != "" {
		return []string{rf.dataset}
	}
	var names []string
	for _, b := range dataset.Benchmarks() {
		names = append(names, b.Name)
	}
	return names
}

func (rf *runFlags) skews() []bool {
	switch rf.skew {
	case "sample":
		return []bool{false}
	case "label":
		return []bool{true}
	default:
		return []bool{false, true}
	}
}

func (rf *runFlags) workload(ds string, skewLabel bool) experiments.Workload {
	w := experiments.QuickWorkload(ds, skewLabel, rf.seed)
	if rf.rows != 1500 { // user overrode the default
		w.Rows = rf.rows
	}
	if ds == "tic-tac-toe" {
		w.Rows = 0
	}
	w.Participants = rf.n
	w.Rounds = rf.rounds
	w.LocalEpochs = rf.epochs
	return w
}

// expensiveOK mirrors the paper: ShapleyValue and LeastCore are dropped on
// dota2 (they cannot finish in reasonable time) unless -full is given.
func (rf *runFlags) expensiveOK(ds string) bool {
	return rf.full || ds != "dota2"
}

func cmdRun(name string, args []string) error {
	rf, err := parseRunFlags(name, args)
	if err != nil {
		return err
	}
	switch name {
	case "table2":
		return runTable2(rf)
	case "fig4":
		return runFig4(rf)
	case "fig5":
		return runFig5(rf)
	case "fig6":
		return runFig6(rf)
	case "fig7":
		return runInterpret(rf, "tic-tac-toe")
	case "tablev":
		return runInterpret(rf, "adult")
	case "ablation":
		return runAblation(rf)
	case "quality":
		return runQuality(rf)
	case "defense":
		return runDefense(rf)
	case "all":
		for _, fn := range []func() error{
			func() error { return runTable2(rf) },
			func() error { return runFig4(rf) },
			func() error { return runFig5(rf) },
			func() error { return runFig6(rf) },
			func() error { return runInterpret(rf, "tic-tac-toe") },
			func() error { return runInterpret(rf, "adult") },
		} {
			if err := fn(); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}

func runTable2(rf *runFlags) error {
	res, err := experiments.RunTable2(rf.seed)
	if err != nil {
		return err
	}
	res.Render(os.Stdout)
	return nil
}

func runFig4(rf *runFlags) error {
	for _, ds := range rf.datasets() {
		for _, skewLabel := range rf.skews() {
			res, err := experiments.RunFig4Avg(rf.workload(ds, skewLabel), rf.topK, rf.expensiveOK(ds), rf.repeats)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			fmt.Println()
		}
	}
	return nil
}

func runFig5(rf *runFlags) error {
	for _, ds := range rf.datasets() {
		s, err := experiments.Materialize(rf.workload(ds, true))
		if err != nil {
			return err
		}
		res, err := experiments.RunFig5(s, rf.expensiveOK(ds))
		if err != nil {
			return err
		}
		res.Render(os.Stdout)
		fmt.Printf("CTFL-micro speedup over slowest method: %.1fx\n\n", res.SpeedupOver("CTFL-micro"))
	}
	return nil
}

func runFig6(rf *runFlags) error {
	for _, ds := range rf.datasets() {
		res, err := experiments.RunFig6Avg(rf.workload(ds, true), 2, rf.expensiveOK(ds), rf.repeats)
		if err != nil {
			return err
		}
		res.Render(os.Stdout)
	}
	return nil
}

func runQuality(rf *runFlags) error {
	for _, ds := range rf.datasets() {
		s, err := experiments.Materialize(rf.workload(ds, true))
		if err != nil {
			return err
		}
		res, err := experiments.RunQuality(s)
		if err != nil {
			return err
		}
		res.Render(os.Stdout)
		fmt.Println()
	}
	return nil
}

func runDefense(rf *runFlags) error {
	for _, ds := range rf.datasets() {
		// Skew-sample keeps honest participants' data comparable, so the
		// sweep's honest-gated column isolates the gate's false positives
		// instead of penalizing legitimately skewed clients.
		s, err := experiments.Materialize(rf.workload(ds, false))
		if err != nil {
			return err
		}
		res, err := experiments.RunDefense(s, experiments.DefenseConfig{})
		if err != nil {
			return err
		}
		res.Render(os.Stdout)
		fmt.Println()
	}
	return nil
}

func runAblation(rf *runFlags) error {
	for _, ds := range rf.datasets() {
		s, err := experiments.Materialize(rf.workload(ds, true))
		if err != nil {
			return err
		}
		res, err := experiments.RunAblation(s)
		if err != nil {
			return err
		}
		res.Render(os.Stdout)
		fmt.Println()
	}
	return nil
}

func runInterpret(rf *runFlags, ds string) error {
	w := rf.workload(ds, true)
	w.Participants = 3 // the paper's case studies use three participants
	if w.Rounds == 0 {
		w.Rounds = 12
	}
	if w.LocalEpochs == 0 {
		w.LocalEpochs = 20
	}
	s, err := experiments.Materialize(w)
	if err != nil {
		return err
	}
	res, err := experiments.RunInterpret(s, 3)
	if err != nil {
		return err
	}
	res.Render(os.Stdout)
	return nil
}
