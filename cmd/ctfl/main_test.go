package main

import (
	"testing"
)

func TestRunDispatch(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatalf("no-arg usage: %v", err)
	}
	if err := run([]string{"help"}); err != nil {
		t.Fatalf("help: %v", err)
	}
	if err := run([]string{"datasets"}); err != nil {
		t.Fatalf("datasets: %v", err)
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown command should error")
	}
	if err := run([]string{"run"}); err == nil {
		t.Fatal("run without experiment should error")
	}
	if err := run([]string{"run", "bogus"}); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestParseRunFlags(t *testing.T) {
	rf, err := parseRunFlags("fig4", []string{"-dataset", "adult", "-n", "4", "-skew", "label", "-repeats", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if got := rf.datasets(); len(got) != 1 || got[0] != "adult" {
		t.Fatalf("datasets = %v", got)
	}
	if got := rf.skews(); len(got) != 1 || got[0] != true {
		t.Fatalf("skews = %v", got)
	}
	if rf.n != 4 || rf.repeats != 2 {
		t.Fatalf("flags not parsed: %+v", rf)
	}
	if _, err := parseRunFlags("fig4", []string{"-n", "nope"}); err == nil {
		t.Fatal("bad flag value should error")
	}
}

func TestRunFlagsDefaults(t *testing.T) {
	rf, err := parseRunFlags("fig5", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := rf.datasets(); len(got) != 4 {
		t.Fatalf("default datasets = %v", got)
	}
	if got := rf.skews(); len(got) != 2 {
		t.Fatalf("default skews = %v", got)
	}
	if rf.expensiveOK("dota2") {
		t.Fatal("dota2 should skip expensive schemes by default")
	}
	if !rf.expensiveOK("adult") {
		t.Fatal("adult should include expensive schemes")
	}
	rf.full = true
	if !rf.expensiveOK("dota2") {
		t.Fatal("-full should include expensive schemes on dota2")
	}
}

func TestWorkloadConstruction(t *testing.T) {
	rf, err := parseRunFlags("fig4", []string{"-rows", "300", "-n", "5", "-seed", "9"})
	if err != nil {
		t.Fatal(err)
	}
	w := rf.workload("adult", true)
	if w.Rows != 300 || w.Participants != 5 || w.Seed != 9 || !w.SkewLabel {
		t.Fatalf("workload = %+v", w)
	}
	// tic-tac-toe always uses its natural size.
	if rf.workload("tic-tac-toe", false).Rows != 0 {
		t.Fatal("tic-tac-toe rows should be 0")
	}
}

func TestRunFig5EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	err := run([]string{"run", "fig5",
		"-dataset", "tic-tac-toe", "-n", "3", "-rounds", "1", "-epochs", "4", "-seed", "2"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunTable2EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	if err := run([]string{"run", "table2", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig4EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	err := run([]string{"run", "fig4",
		"-dataset", "tic-tac-toe", "-n", "3", "-rounds", "1", "-epochs", "4",
		"-skew", "sample", "-repeats", "1", "-topk", "2", "-seed", "2"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunFig6EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	err := run([]string{"run", "fig6",
		"-dataset", "tic-tac-toe", "-n", "3", "-rounds", "1", "-epochs", "4",
		"-repeats", "1", "-seed", "2"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunInterpretEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	err := run([]string{"run", "fig7", "-rounds", "2", "-epochs", "5", "-seed", "2"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunAblationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	err := run([]string{"run", "ablation",
		"-dataset", "tic-tac-toe", "-n", "3", "-rounds", "1", "-epochs", "4", "-seed", "2"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunQualityEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	err := run([]string{"run", "quality",
		"-dataset", "tic-tac-toe", "-n", "3", "-rounds", "1", "-epochs", "4", "-seed", "2"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseBenchOutputThroughputColumn(t *testing.T) {
	out := `goos: linux
BenchmarkUploadIngest/path=v1-8   	     658	 1586672 ns/op	  10.67 MB/s	  760856 B/op	    1576 allocs/op
BenchmarkTraceResultEncode/codec=binary 	 1391853	     740.2 ns/op	       0 B/op	       0 allocs/op
PASS
`
	entries := parseBenchOutput(out)
	if len(entries) != 2 {
		t.Fatalf("parsed %d entries, want 2", len(entries))
	}
	e := entries[0]
	if e.Name != "BenchmarkUploadIngest/path=v1" || e.Procs != 8 {
		t.Fatalf("entry 0 = %+v", e)
	}
	if e.NsOp != 1586672 || e.BytesOp != 760856 || e.AllocsOp != 1576 {
		t.Fatalf("MB/s column broke the numbers: %+v", e)
	}
	if entries[1].BytesOp != 0 || entries[1].AllocsOp != 0 {
		t.Fatalf("entry 1 = %+v", entries[1])
	}
}
