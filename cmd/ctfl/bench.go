package main

// ctfl bench — the repeatable benchmark runner behind the committed
// BENCH_*.json baselines. It shells out to `go test -run=NONE -bench=...
// -benchmem`, parses the standard benchmark output, optionally joins the
// numbers against saved "before" outputs (raw `go test -bench` text files),
// and writes a machine-readable JSON report with per-benchmark ns/op,
// B/op, allocs/op and speedup factors.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// benchEntry is one benchmark's measurement (and, when a baseline was
// supplied, its before/after comparison).
type benchEntry struct {
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the benchmark ran under (the -N suffix go
	// test appends); 1 when the suffix is absent. Parallel-engine numbers
	// are only comparable across machines alongside this.
	Procs    int     `json:"procs,omitempty"`
	NsOp     float64 `json:"ns_op"`
	BytesOp  float64 `json:"bytes_op,omitempty"`
	AllocsOp float64 `json:"allocs_op,omitempty"`

	BeforeNsOp     float64 `json:"before_ns_op,omitempty"`
	BeforeBytesOp  float64 `json:"before_bytes_op,omitempty"`
	BeforeAllocsOp float64 `json:"before_allocs_op,omitempty"`
	// Speedup is before_ns_op / ns_op (>1 means faster than the baseline).
	Speedup float64 `json:"speedup,omitempty"`
}

// benchReport is the BENCH_*.json document.
type benchReport struct {
	Generated  string       `json:"generated"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Bench      string       `json:"bench_regex"`
	Packages   []string     `json:"packages"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

// defaultBenchRegex covers the hot paths the performance overhauls target:
// tracing (construction + queries), NN training and batch inference, the
// end-to-end Table II pipeline, the parallel coalition-valuation engine,
// and the streaming round-valuation engine.
const defaultBenchRegex = "BenchmarkTrace|BenchmarkNewTracer|BenchmarkTrainEpochs|" +
	"BenchmarkPredictBatch|BenchmarkScoreAndActivations|BenchmarkTable2|BenchmarkTracingThroughput|" +
	"BenchmarkOracleBatch|BenchmarkSampledShapleyParallel|" +
	"BenchmarkTraceResult|BenchmarkUploadIngest|BenchmarkServerPredict|BenchmarkServerUploadIngest|" +
	"BenchmarkRoundIngest|BenchmarkIncrementalScores|BenchmarkBatchRevaluation"

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	benchRe := fs.String("bench", defaultBenchRegex, "benchmark regex passed to go test -bench")
	pkgs := fs.String("pkg", "./internal/core/,./internal/nn/,./internal/valuation/,./internal/rounds/,./internal/protocol/,./internal/server/,.", "comma-separated packages to benchmark")
	before := fs.String("before", "", "comma-separated files or globs of saved `go test -bench` output to compare against")
	out := fs.String("o", "", "write the JSON report here (default: stdout)")
	benchtime := fs.String("benchtime", "", "go test -benchtime value (e.g. 2s, 100x)")
	count := fs.Int("count", 1, "go test -count value")
	profileDir := fs.String("profile", "", "directory receiving per-package CPU and heap pprof profiles")
	if err := fs.Parse(args); err != nil {
		return err
	}

	pkgList := strings.Split(*pkgs, ",")
	commonArgs := []string{"-run=NONE", "-bench=" + *benchRe, "-benchmem",
		"-count=" + strconv.Itoa(*count)}
	if *benchtime != "" {
		commonArgs = append(commonArgs, "-benchtime="+*benchtime)
	}

	var raw []byte
	if *profileDir != "" {
		// go test rejects -cpuprofile with multiple packages, so profiled
		// runs go one package at a time, each writing its own pprof pair.
		if err := os.MkdirAll(*profileDir, 0o755); err != nil {
			return fmt.Errorf("bench: %w", err)
		}
		for _, pkg := range pkgList {
			slug := pkgSlug(pkg)
			goArgs := append([]string{"test"}, commonArgs...)
			goArgs = append(goArgs,
				"-cpuprofile", filepath.Join(*profileDir, slug+".cpu.pprof"),
				"-memprofile", filepath.Join(*profileDir, slug+".mem.pprof"),
				pkg)
			fmt.Fprintf(os.Stderr, "ctfl bench: go %s\n", strings.Join(goArgs, " "))
			cmd := exec.Command("go", goArgs...)
			cmd.Stderr = os.Stderr
			out, err := cmd.Output()
			if err != nil {
				return fmt.Errorf("bench: go test %s failed: %w", pkg, err)
			}
			os.Stderr.Write(out)
			raw = append(raw, out...)
		}
		fmt.Fprintf(os.Stderr, "ctfl bench: profiles in %s (inspect with `go tool pprof`)\n", *profileDir)
	} else {
		goArgs := append([]string{"test"}, commonArgs...)
		goArgs = append(goArgs, pkgList...)
		fmt.Fprintf(os.Stderr, "ctfl bench: go %s\n", strings.Join(goArgs, " "))
		cmd := exec.Command("go", goArgs...)
		cmd.Stderr = os.Stderr
		var err error
		raw, err = cmd.Output()
		if err != nil {
			return fmt.Errorf("bench: go test failed: %w", err)
		}
		os.Stderr.Write(raw)
	}

	entries := parseBenchOutput(string(raw))
	if len(entries) == 0 {
		return fmt.Errorf("bench: no benchmark results parsed")
	}

	if *before != "" {
		base, err := loadBaseline(*before)
		if err != nil {
			return err
		}
		for i := range entries {
			b, ok := base[entries[i].Name]
			if !ok {
				continue
			}
			entries[i].BeforeNsOp = b.NsOp
			entries[i].BeforeBytesOp = b.BytesOp
			entries[i].BeforeAllocsOp = b.AllocsOp
			if entries[i].NsOp > 0 {
				entries[i].Speedup = round2(b.NsOp / entries[i].NsOp)
			}
		}
	}

	rep := benchReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Bench:      *benchRe,
		Packages:   pkgList,
		Benchmarks: entries,
	}
	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if *out == "" {
		os.Stdout.Write(doc)
		return nil
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ctfl bench: wrote %s (%d benchmarks)\n", *out, len(entries))
	return nil
}

// benchLine matches standard `go test -bench -benchmem` result lines, e.g.
//
//	BenchmarkTraceIndexed-8   132   8891909 ns/op   2654486 B/op   6566 allocs/op
//	BenchmarkUploadIngest-8   658   1586672 ns/op   10.67 MB/s   760856 B/op   1576 allocs/op
//
// The throughput column benchmarks with b.SetBytes emit is skipped. The -N
// GOMAXPROCS suffix is recorded as Procs but stripped from the name, so
// baselines recorded on a different core count still join by name.
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]+?)(?:-(\d+))?\s+\d+\s+([0-9.]+) ns/op(?:\s+[0-9.]+ MB/s)?(?:\s+([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

func parseBenchOutput(out string) []benchEntry {
	var entries []benchEntry
	seen := map[string]int{} // name -> index, averaging repeated -count runs
	counts := map[string]int{}
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		e := benchEntry{Name: m[1], Procs: 1}
		if m[2] != "" {
			e.Procs, _ = strconv.Atoi(m[2])
		}
		e.NsOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			e.BytesOp, _ = strconv.ParseFloat(m[4], 64)
			e.AllocsOp, _ = strconv.ParseFloat(m[5], 64)
		}
		if i, ok := seen[e.Name]; ok {
			n := float64(counts[e.Name])
			entries[i].NsOp = (entries[i].NsOp*n + e.NsOp) / (n + 1)
			entries[i].BytesOp = (entries[i].BytesOp*n + e.BytesOp) / (n + 1)
			entries[i].AllocsOp = (entries[i].AllocsOp*n + e.AllocsOp) / (n + 1)
			counts[e.Name]++
			continue
		}
		seen[e.Name] = len(entries)
		counts[e.Name] = 1
		entries = append(entries, e)
	}
	return entries
}

// loadBaseline parses one or more saved `go test -bench` outputs into a
// name-indexed map. Arguments may be files or globs, comma separated.
func loadBaseline(spec string) (map[string]benchEntry, error) {
	base := map[string]benchEntry{}
	for _, pat := range strings.Split(spec, ",") {
		files, err := filepath.Glob(pat)
		if err != nil {
			return nil, fmt.Errorf("bench: bad -before pattern %q: %w", pat, err)
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("bench: -before pattern %q matched no files", pat)
		}
		for _, f := range files {
			raw, err := os.ReadFile(f)
			if err != nil {
				return nil, err
			}
			for _, e := range parseBenchOutput(string(raw)) {
				base[e.Name] = e
			}
		}
	}
	return base, nil
}

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }

// pkgSlug flattens a package path into a filename-safe profile prefix:
// "./internal/core/" → "internal_core", "." → "root".
func pkgSlug(pkg string) string {
	s := strings.Trim(pkg, "./")
	if s == "" {
		return "root"
	}
	return strings.NewReplacer("/", "_", ".", "_").Replace(s)
}
