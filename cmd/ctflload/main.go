// Command ctflload is the cluster load generator: it spawns N ctflsrv
// node child processes (durable, fsync-per-append WAL — the production
// posture), shards a set of federations across them with the same
// consistent-hash ring the server uses, and drives sustained concurrent
// traffic through the ring-aware server.Client: upload ingest,
// round-update pushes, binary predict batches, and score polls.
//
// Each experiment reports per-route throughput and latency quantiles
// (p50/p95/p99); passing several node counts (-nodes 1,3) runs one
// experiment per count over identical traffic and reports the aggregate
// write throughput (uploads + rounds) speedup of the largest cluster over
// the single node. On a one-core host the speedup comes from overlapping
// the per-append WAL fsync across node WALs: a single node serializes
// handler CPU behind its fsync, while N nodes keep the CPU busy during
// each other's disk waits.
//
// Usage:
//
//	ctflload [-nodes 1,3] [-duration 5s] [-warmup 500ms]
//	         [-uploaders 6] [-rounders 2] [-predicters 2] [-scorers 1]
//	         [-upload-records 8] [-eval-rows 64] [-round-perms 4]
//	         [-no-sync] [-seed 23] [-note s] [-out BENCH_9.json]
//
// Output is a BENCH_*.json-shaped document: generated/go_version/
// gomaxprocs/num_cpu/note plus one "runs" entry per node count and the
// computed "write_speedup_vs_single".
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/fedsim"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/protocol"
	"repro/internal/rules"
	"repro/internal/server"
	"repro/internal/stats"
)

// fixture is the shared workload: one trained tic-tac-toe federation's
// publishable artifacts plus the pre-sliced traffic payloads every
// experiment replays identically.
type fixture struct {
	encoder  *dataset.Encoder
	model    *nn.Model
	evalCSV  []byte                        // small eval subset for the rounds engine
	uploads  [][]byte                      // pre-encoded upload frames, cycled by upload workers
	rounds   [][]protocol.RoundParticipant // fedsim round updates, cycled with fresh round numbers
	predRows []float32                     // one 32-row binary predict batch
	width    int                           // encoded feature width
}

func buildFixture(seed int64, uploadRecords, evalRows int) (*fixture, error) {
	tab := dataset.TicTacToe()
	r := stats.NewRNG(seed)
	train, test := tab.Split(r, 0.25)
	enc, err := dataset.NewEncoder(tab.Schema, 4, r)
	if err != nil {
		return nil, err
	}
	perm := r.Perm(train.Len())
	fracs := []float64{0.30, 0.25, 0.20, 0.15, 0.10}
	parts := make([]*fl.Participant, len(fracs))
	at := 0
	for i, f := range fracs {
		n := int(f * float64(train.Len()))
		if i == len(fracs)-1 {
			n = train.Len() - at
		}
		parts[i] = &fl.Participant{ID: i, Name: string(rune('A' + i)), Data: train.Subset(perm[at : at+n])}
		at += n
	}
	model := nn.Config{Hidden: []int{16}, Seed: 7, BatchSize: 128}
	trainer := fl.NewTrainer(enc, fl.TrainConfig{
		Rounds: 1, LocalEpochs: 3, Parallel: true, Model: model, Seed: seed,
	})
	trained, err := trainer.Train(parts)
	if err != nil {
		return nil, err
	}
	sim, err := fedsim.Run(enc, parts, test, fedsim.Config{
		Rounds: 4, LocalEpochs: 2, Model: model, Seed: seed,
	})
	if err != nil {
		return nil, err
	}

	fx := &fixture{encoder: enc, model: trained, width: enc.Width()}

	// Small eval subset: keeps each round-update Compute cheap so the
	// write mix is fsync-bound (the thing the cluster overlaps), not
	// valuation-bound.
	if evalRows > test.Len() {
		evalRows = test.Len()
	}
	idx := make([]int, evalRows)
	for i := range idx {
		idx[i] = i
	}
	var csv bytes.Buffer
	if err := dataset.WriteCSV(&csv, test.Subset(idx)); err != nil {
		return nil, err
	}
	fx.evalCSV = csv.Bytes()

	// Slice each participant's activations into small upload frames so a
	// sustained run appends thousands of frames without ballooning the WAL.
	rs := rules.Extract(trained, enc)
	for pi, p := range parts {
		acts, _ := rs.ActivationsTable(p.Data)
		for at := 0; at < len(acts); at += uploadRecords {
			end := min(at+uploadRecords, len(acts))
			up := &protocol.Upload{Participant: pi, RuleWidth: rs.Width()}
			for i := at; i < end; i++ {
				up.Records = append(up.Records, protocol.Record{
					Label:       p.Data.Instances[i].Label,
					Activations: acts[i],
				})
			}
			var buf bytes.Buffer
			if err := up.Write(&buf); err != nil {
				return nil, err
			}
			fx.uploads = append(fx.uploads, buf.Bytes())
		}
	}

	for _, ups := range sim.Updates {
		rps := make([]protocol.RoundParticipant, len(ups))
		for i, u := range ups {
			rps[i] = protocol.RoundParticipant{ID: u.Participant, Weight: u.Weight, Params: u.Params}
		}
		fx.rounds = append(fx.rounds, rps)
	}

	const batch = 32
	for i := 0; i < batch; i++ {
		x := enc.Encode(tab.Instances[i], nil)
		for _, v := range x {
			fx.predRows = append(fx.predRows, float32(v))
		}
	}
	return fx, nil
}

// routeStats accumulates latency samples for one traffic class.
type routeStats struct {
	mu      sync.Mutex
	route   string
	samples []float64 // seconds
	errors  int64
}

func (rs *routeStats) observe(d time.Duration, err error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if err != nil {
		rs.errors++
		return
	}
	rs.samples = append(rs.samples, d.Seconds())
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	return sorted[max(0, min(i, len(sorted)-1))]
}

// RouteReport is one traffic class's measured outcome.
type RouteReport struct {
	Route  string  `json:"route"`
	Ops    int64   `json:"ops"`
	Errors int64   `json:"errors"`
	RPS    float64 `json:"rps"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

func (rs *routeStats) report(window time.Duration) RouteReport {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	sorted := append([]float64(nil), rs.samples...)
	sort.Float64s(sorted)
	return RouteReport{
		Route:  rs.route,
		Ops:    int64(len(sorted)),
		Errors: rs.errors,
		RPS:    float64(len(sorted)) / window.Seconds(),
		P50Ms:  quantile(sorted, 0.50) * 1e3,
		P95Ms:  quantile(sorted, 0.95) * 1e3,
		P99Ms:  quantile(sorted, 0.99) * 1e3,
	}
}

// RunReport is one experiment: a node count and its per-route results.
type RunReport struct {
	Nodes      int           `json:"nodes"`
	Feds       int           `json:"feds"`
	DurationS  float64       `json:"duration_s"`
	Sync       bool          `json:"sync_wal"`
	Replicated bool          `json:"replicated"`
	Routes     []RouteReport `json:"routes"`
	WriteRPS   float64       `json:"aggregate_write_rps"` // uploads + rounds
	WriteP99Ms float64       `json:"write_p99_ms"`        // worst write-route p99
}

type loadConfig struct {
	duration, warmup time.Duration
	uploaders        int
	rounders         int
	predicters       int
	scorers          int
	roundPerms       int
	noSync           bool
	replicate        bool
	seed             int64
}

// node is one spawned ctflsrv child process. Nodes run as separate
// processes, not goroutines: a WAL fsync is a blocking syscall that stalls
// a GOMAXPROCS=1 runtime until sysmon retakes the P, so in-process nodes
// could never overlap their disk waits — the very effect the cluster
// exists to exploit. Separate processes let the kernel hand the core to
// another node (or the load workers) for the duration of every fsync,
// which is also the shape of a real multi-node deployment.
type node struct {
	cmd *exec.Cmd
	url string
}

// runNode is the hidden child mode: one ctflsrv node on a fixed address,
// killed by the parent when the experiment ends.
func runNode(addr, dataDir, self, peers, replica, leader string, roundPerms int, noSync bool) {
	opts := server.Options{
		DataDir:           dataDir,
		NoSync:            noSync,
		CompactBytes:      1 << 30, // no mid-run compaction churn
		Logger:            slog.New(slog.DiscardHandler),
		SLOInterval:       -1, // also disables follower failover burn: no mid-run promotions
		RoundPermutations: roundPerms,
		RoundSeed:         1,
		RoundWorkers:      1,
		ReplicaURL:        replica,
		LeaderURL:         leader,
	}
	if peers != "" {
		opts.ClusterSelf = self
		opts.ClusterPeers = strings.Split(peers, ",")
	}
	svc, err := server.NewWithOptions(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctflload node: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctflload node: listen %s: %v\n", addr, err)
		os.Exit(1)
	}
	// Children expose pprof so a profiler can attach to any node mid-run
	// (the parent's -cpuprofile only covers the client side).
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	mux.Handle("/", svc)
	srv := &http.Server{Handler: mux}
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "ctflload node: %v\n", err)
		os.Exit(1)
	}
}

// reservePorts grabs k distinct loopback ports and releases them for the
// children to bind: peer and replica URLs must be final before any node
// starts.
func reservePorts(k int) ([]string, []string, error) {
	addrs := make([]string, k)
	urls := make([]string, k)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		addrs[i] = ln.Addr().String()
		urls[i] = "http://" + addrs[i]
		ln.Close()
	}
	return addrs, urls, nil
}

// startNodes launches the ring: n shard leaders, plus one synchronous
// follower per leader when cfg.replicate is set (the production posture —
// every write is pushed to the follower before the leader acknowledges).
// The returned URL list covers only the leaders; followers are internal.
func startNodes(dir string, n int, cfg loadConfig) ([]*node, []string, error) {
	addrs, urls, err := reservePorts(n)
	if err != nil {
		return nil, nil, err
	}
	var fAddrs, fURLs []string
	if cfg.replicate {
		if fAddrs, fURLs, err = reservePorts(n); err != nil {
			return nil, nil, err
		}
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, nil, err
	}
	start := func(nodes []*node, args []string, url string) ([]*node, error) {
		cmd := exec.Command(exe, args...)
		// On a one-core host every GC cycle in a node steals CPU from the
		// write path of all N processes; relax the pacer so short
		// experiments spend the core on requests, not collections.
		cmd.Env = append(os.Environ(), "GOGC=600")
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			stopNodes(nodes)
			return nil, err
		}
		return append(nodes, &node{cmd: cmd, url: url}), nil
	}
	var nodes []*node
	for i := 0; i < n; i++ {
		if cfg.replicate {
			// Follower first: the leader pushes to it on the first write.
			fargs := []string{
				"-node-addr", fAddrs[i],
				"-node-data-dir", filepath.Join(dir, fmt.Sprintf("follower%d", i)),
				"-node-leader", urls[i],
				"-round-perms", strconv.Itoa(cfg.roundPerms),
			}
			if cfg.noSync {
				fargs = append(fargs, "-no-sync")
			}
			if nodes, err = start(nodes, fargs, fURLs[i]); err != nil {
				return nil, nil, err
			}
		}
		args := []string{
			"-node-addr", addrs[i],
			"-node-data-dir", filepath.Join(dir, fmt.Sprintf("node%d", i)),
			"-round-perms", strconv.Itoa(cfg.roundPerms),
		}
		if cfg.replicate {
			args = append(args, "-node-replica", fURLs[i])
		}
		if n > 1 {
			args = append(args, "-node-self", urls[i], "-node-peers", strings.Join(urls, ","))
		}
		if cfg.noSync {
			args = append(args, "-no-sync")
		}
		if nodes, err = start(nodes, args, urls[i]); err != nil {
			return nil, nil, err
		}
	}
	// Readiness: every node (followers included) must answer /healthz
	// before traffic starts.
	deadline := time.Now().Add(15 * time.Second)
	for _, nd := range nodes {
		for {
			resp, err := http.Get(nd.url + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				stopNodes(nodes)
				return nil, nil, fmt.Errorf("node %s not ready after 15s", nd.url)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	return nodes, urls, nil
}

func stopNodes(nodes []*node) {
	for _, nd := range nodes {
		if nd == nil || nd.cmd.Process == nil {
			continue
		}
		nd.cmd.Process.Kill()
		nd.cmd.Wait()
	}
}

func runExperiment(fx *fixture, n int, cfg loadConfig) (*RunReport, error) {
	dir, err := os.MkdirTemp("", "ctflload")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	nodes, urls, err := startNodes(dir, n, cfg)
	if err != nil {
		return nil, err
	}
	defer stopNodes(nodes)

	// Publish the federation on every leader: each node is one shard's
	// replica of the lifecycle artifacts, traffic is what gets sharded.
	// Followers fence writes; they pick the artifacts up via replication.
	ctx := context.Background()
	for _, u := range urls {
		cl := &server.Client{BaseURL: u}
		if err := cl.PublishEncoder(ctx, fx.encoder); err != nil {
			return nil, fmt.Errorf("publish encoder: %w", err)
		}
		if err := cl.PublishModel(ctx, fx.model); err != nil {
			return nil, fmt.Errorf("publish model: %w", err)
		}
		resp, err := http.Post(u+"/v1/rounds", "text/csv", bytes.NewReader(fx.evalCSV))
		if err != nil {
			return nil, err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("round eval registration: status %d", resp.StatusCode)
		}
	}

	// Federations, placed by the same ring the servers use. Candidate ids
	// are drawn until every node owns one, then one fed per node is kept:
	// worker w drives feds[w%n], so load is even across the ring no matter
	// how the hash happens to spread a small id set.
	feds := make([]string, 0, n)
	owner := map[string]string{}
	if n > 1 {
		ring, err := cluster.New(urls, cluster.Config{})
		if err != nil {
			return nil, err
		}
		covered := map[string]string{} // node URL -> one fed it owns
		for i := 0; len(covered) < n && i < 10_000; i++ {
			f := fmt.Sprintf("fed-%03d", i)
			if u := ring.Lookup(f); covered[u] == "" {
				covered[u] = f
			}
		}
		if len(covered) < n {
			return nil, fmt.Errorf("ring never placed a federation on %d of %d nodes", n-len(covered), n)
		}
		for _, u := range urls {
			feds = append(feds, covered[u])
			owner[covered[u]] = u
		}
	} else {
		feds = append(feds, "fed-000")
		owner["fed-000"] = urls[0]
	}
	// One shared transport with enough idle capacity that every worker
	// keeps its connection alive: the default per-host idle cap of 2 makes
	// a many-worker closed loop redial constantly, and on one core the
	// dial syscalls drown the servers.
	httpc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
	}}
	clientFor := func(i int) (*server.Client, string) {
		fed := feds[i%len(feds)]
		cl := &server.Client{BaseURL: urls[i%len(urls)], Fed: fed,
			HTTPClient: httpc,
			Retry:      &server.ClientRetryPolicy{MaxAttempts: 3}}
		if n > 1 {
			cl.Shards = urls
		}
		return cl, fed
	}

	upStats := &routeStats{route: "/v1/uploads"}
	rdStats := &routeStats{route: "/v1/rounds"}
	prStats := &routeStats{route: "/v1/predict"}
	scStats := &routeStats{route: "/v1/scores"}

	deadline := time.Now().Add(cfg.warmup + cfg.duration)
	measureFrom := time.Now().Add(cfg.warmup)
	runCtx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()

	var wg sync.WaitGroup
	worker := func(st *routeStats, op func(c *server.Client, i int) error, cl *server.Client) {
		defer wg.Done()
		for i := 0; ; i++ {
			t0 := time.Now()
			err := op(cl, i)
			if runCtx.Err() != nil {
				return // deadline, not a request failure
			}
			if t0.After(measureFrom) {
				st.observe(time.Since(t0), err)
			}
		}
	}

	// Worker counts are per node: offered load scales with the cluster, so
	// the single-node baseline and the ring see the same per-node queue
	// depth (and therefore comparable tail latency).
	for w := 0; w < cfg.uploaders*n; w++ {
		wg.Add(1)
		off := w * 17
		cl, _ := clientFor(w)
		go worker(upStats, func(c *server.Client, i int) error {
			return c.UploadFrames(runCtx, fx.uploads[(off+i)%len(fx.uploads)])
		}, cl)
	}
	// Round numbers must rise monotonically per node; one counter and one
	// in-flight push per owner keeps concurrent rounders from racing their
	// commits out of order.
	type nodeRounds struct {
		mu   sync.Mutex
		next int64
	}
	perNode := map[string]*nodeRounds{}
	for _, u := range urls {
		perNode[u] = &nodeRounds{}
	}
	for w := 0; w < cfg.rounders*n; w++ {
		wg.Add(1)
		cl, fed := clientFor(w)
		nr := perNode[owner[fed]]
		go worker(rdStats, func(c *server.Client, i int) error {
			nr.mu.Lock()
			defer nr.mu.Unlock()
			round := int(atomic.AddInt64(&nr.next, 1))
			_, err := c.PushRound(runCtx, round, fx.rounds[round%len(fx.rounds)])
			return err
		}, cl)
	}
	for w := 0; w < cfg.predicters*n; w++ {
		wg.Add(1)
		cl, _ := clientFor(w)
		go worker(prStats, func(c *server.Client, i int) error {
			_, err := c.Predict(runCtx, fx.width, fx.predRows)
			return err
		}, cl)
	}
	for w := 0; w < cfg.scorers*n; w++ {
		wg.Add(1)
		cl, _ := clientFor(w)
		go worker(scStats, func(c *server.Client, i int) error {
			_, err := c.Scores(runCtx, 0, 0)
			return err
		}, cl)
	}
	wg.Wait()

	rep := &RunReport{
		Nodes: n, Feds: len(feds), DurationS: cfg.duration.Seconds(), Sync: !cfg.noSync,
		Replicated: cfg.replicate,
	}
	for _, st := range []*routeStats{upStats, rdStats, prStats, scStats} {
		rep.Routes = append(rep.Routes, st.report(cfg.duration))
	}
	up, rd := rep.Routes[0], rep.Routes[1]
	rep.WriteRPS = up.RPS + rd.RPS
	rep.WriteP99Ms = max(up.P99Ms, rd.P99Ms)
	return rep, nil
}

// Report is the whole document ctflload emits.
type Report struct {
	Generated            string      `json:"generated"`
	GoVersion            string      `json:"go_version"`
	GoMaxProcs           int         `json:"gomaxprocs"`
	NumCPU               int         `json:"num_cpu"`
	Note                 string      `json:"note"`
	Runs                 []RunReport `json:"runs"`
	WriteSpeedupVsSingle float64     `json:"write_speedup_vs_single,omitempty"`
}

func main() {
	nodesFlag := flag.String("nodes", "1,3", "comma-separated node counts; one experiment per entry")
	duration := flag.Duration("duration", 5*time.Second, "measured load window per experiment")
	warmup := flag.Duration("warmup", 500*time.Millisecond, "untimed ramp before measurement starts")
	uploaders := flag.Int("uploaders", 6, "concurrent upload-ingest workers")
	rounders := flag.Int("rounders", 2, "concurrent round-push workers")
	predicters := flag.Int("predicters", 2, "concurrent binary-predict workers")
	scorers := flag.Int("scorers", 1, "concurrent score-poll workers")
	uploadRecords := flag.Int("upload-records", 8, "records per upload frame")
	evalRows := flag.Int("eval-rows", 64, "evaluation rows for the rounds engine")
	roundPerms := flag.Int("round-perms", 4, "permutation samples per streamed round")
	noSync := flag.Bool("no-sync", false, "skip per-append WAL fsync (drops the durability the experiment is about)")
	replicate := flag.Bool("replicate", false, "pair every shard leader with a synchronous follower (production posture)")
	seed := flag.Int64("seed", 23, "fixture RNG seed")
	note := flag.String("note", "", "free-form note recorded in the output")
	out := flag.String("out", "", "output file (empty = stdout)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile covering every experiment")
	// Hidden child mode: the parent re-execs itself once per node so every
	// node owns its runtime (see the node type for why).
	nodeAddr := flag.String("node-addr", "", "internal: run as one cluster node on this address")
	nodeDataDir := flag.String("node-data-dir", "", "internal: node persistence directory")
	nodeSelf := flag.String("node-self", "", "internal: node base URL in the ring")
	nodePeers := flag.String("node-peers", "", "internal: comma-separated ring member URLs")
	nodeReplica := flag.String("node-replica", "", "internal: follower URL this leader replicates to")
	nodeLeader := flag.String("node-leader", "", "internal: leader URL this follower node follows")
	flag.Parse()

	if *nodeAddr != "" {
		runNode(*nodeAddr, *nodeDataDir, *nodeSelf, *nodePeers, *nodeReplica, *nodeLeader, *roundPerms, *noSync)
		return
	}

	var counts []int
	for _, s := range strings.Split(*nodesFlag, ",") {
		if s = strings.TrimSpace(s); s == "" {
			continue
		}
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "ctflload: bad -nodes entry %q\n", s)
			os.Exit(2)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		fmt.Fprintln(os.Stderr, "ctflload: -nodes is empty")
		os.Exit(2)
	}

	cfg := loadConfig{
		duration: *duration, warmup: *warmup,
		uploaders: *uploaders, rounders: *rounders,
		predicters: *predicters, scorers: *scorers,
		roundPerms: *roundPerms, noSync: *noSync, replicate: *replicate, seed: *seed,
	}

	// The parent's client workers share the single core with every node;
	// match the nodes' relaxed GC pacer so collections don't distort the
	// measured window (see startNodes).
	debug.SetGCPercent(600)

	fmt.Fprintln(os.Stderr, "ctflload: building fixture...")
	fx, err := buildFixture(cfg.seed, *uploadRecords, *evalRows)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctflload: fixture: %v\n", err)
		os.Exit(1)
	}

	rep := Report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Note:       *note,
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctflload: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}

	var single, best *RunReport
	for _, n := range counts {
		fmt.Fprintf(os.Stderr, "ctflload: %d node(s), %s + %s warmup...\n", n, *duration, *warmup)
		r, err := runExperiment(fx, n, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctflload: run nodes=%d: %v\n", n, err)
			os.Exit(1)
		}
		rep.Runs = append(rep.Runs, *r)
		fmt.Fprintf(os.Stderr, "ctflload: nodes=%d write rps=%.0f write p99=%.2fms\n",
			n, r.WriteRPS, r.WriteP99Ms)
		if n == 1 {
			single = r
		}
		if best == nil || r.WriteRPS > best.WriteRPS {
			best = r
		}
	}
	if single != nil && best != nil && best.Nodes > 1 && single.WriteRPS > 0 {
		rep.WriteSpeedupVsSingle = best.WriteRPS / single.WriteRPS
		fmt.Fprintf(os.Stderr, "ctflload: %d-node aggregate write speedup vs single: %.2fx\n",
			best.Nodes, rep.WriteSpeedupVsSingle)
	}

	enc, _ := json.MarshalIndent(rep, "", "  ")
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "ctflload: write %s: %v\n", *out, err)
		os.Exit(1)
	}
}
