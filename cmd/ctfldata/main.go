// Command ctfldata generates the benchmark datasets as CSV files, so the
// synthetic benchmarks can be inspected, versioned, or swapped for the real
// UCI/Kaggle files (which load through the same dataset.ReadCSV path).
//
// Usage:
//
//	ctfldata -dataset adult -rows 5000 -seed 1 -out adult.csv
//	ctfldata -dataset tic-tac-toe -out ttt.csv     # exact 958-row UCI set
//	ctfldata -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "ctfldata: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("ctfldata", flag.ContinueOnError)
	name := fs.String("dataset", "", "benchmark to generate (see -list)")
	rows := fs.Int("rows", 0, "row count (0 = the paper's full size)")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("out", "", "output file (default stdout)")
	list := fs.Bool("list", false, "list available benchmarks")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, b := range dataset.Benchmarks() {
			fmt.Fprintf(stdout, "%-12s %8d rows  %s\n", b.Name, b.FullSize, b.FeatureNote)
		}
		return nil
	}
	if *name == "" {
		return fmt.Errorf("missing -dataset (or use -list)")
	}
	info, err := dataset.ByName(*name)
	if err != nil {
		return err
	}
	tab := info.Generate(stats.NewRNG(*seed), *rows)

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteCSV(w, tab); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d rows of %s to %s\n", tab.Len(), *name, *out)
	}
	return nil
}
