package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ttt.csv")
	if err := run([]string{"-dataset", "tic-tac-toe", "-out", out}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != 959 { // header + 958 boards
		t.Fatalf("lines = %d, want 959", lines)
	}
	if !strings.HasPrefix(string(data), "top-left,") {
		t.Fatalf("header wrong: %q", string(data[:40]))
	}
}

func TestGenerateSyntheticWithRows(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bank.csv")
	if err := run([]string{"-dataset", "bank", "-rows", "50", "-seed", "3", "-out", out}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(string(data), "\n") != 51 {
		t.Fatalf("rows wrong")
	}
}

func TestListAndErrors(t *testing.T) {
	if err := run([]string{"-list"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	if err := run(nil, os.Stdout); err == nil {
		t.Fatal("missing -dataset should error")
	}
	if err := run([]string{"-dataset", "nope"}, os.Stdout); err == nil {
		t.Fatal("unknown dataset should error")
	}
	if err := run([]string{"-bogusflag"}, os.Stdout); err == nil {
		t.Fatal("bad flag should error")
	}
	if err := run([]string{"-dataset", "adult", "-out", "/nonexistent-dir/x.csv"}, os.Stdout); err == nil {
		t.Fatal("unwritable output should error")
	}
}
