package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

func TestParseMetrics(t *testing.T) {
	text := `# HELP ctfl_http_requests_total HTTP requests served, by route
# TYPE ctfl_http_requests_total counter
ctfl_http_requests_total{route="/healthz"} 5
ctfl_http_request_seconds_bucket{route="/healthz",le="0.25"} 4
ctfl_http_request_seconds_bucket{route="/healthz",le="+Inf"} 5
ctfl_slo_burn_rate{slo="availability",window="fast"} 1.5
garbage line without value x
ctfl_process_goroutines 12
`
	vals := parseMetrics(strings.NewReader(text))
	for name, want := range map[string]float64{
		`ctfl_http_requests_total{route="/healthz"}`:                   5,
		`ctfl_http_request_seconds_bucket{route="/healthz",le="0.25"}`: 4,
		`ctfl_slo_burn_rate{slo="availability",window="fast"}`:         1.5,
		"ctfl_process_goroutines":                                      12,
	} {
		if got := vals[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

func TestSplitMetricName(t *testing.T) {
	base, labels := splitMetricName(`ctfl_http_request_seconds_bucket{route="/v1/trace/{id}",le="0.25"}`)
	if base != "ctfl_http_request_seconds_bucket" {
		t.Fatalf("base = %q", base)
	}
	if labels["route"] != "/v1/trace/{id}" || labels["le"] != "0.25" {
		t.Fatalf("labels = %v", labels)
	}
	base, labels = splitMetricName("ctfl_process_goroutines")
	if base != "ctfl_process_goroutines" || labels != nil {
		t.Fatalf("unlabeled: base %q labels %v", base, labels)
	}
}

func TestEstimateQuantileEdges(t *testing.T) {
	if q := estimateQuantile(nil, 0.99); q != 0 {
		t.Fatalf("empty histogram p99 = %v", q)
	}
	// All observations in the first bucket: interpolate within [0, 0.1].
	b := []bucketPoint{{le: 0.1, cum: 10}, {le: 0.5, cum: 10}, {le: inf, cum: 10}}
	q := estimateQuantile(b, 0.5)
	if q <= 0 || q > 0.1 {
		t.Fatalf("p50 = %v, want within (0, 0.1]", q)
	}
	// Overflow-bucket mass answers with the last finite bound.
	b = []bucketPoint{{le: 0.1, cum: 0}, {le: 0.5, cum: 0}, {le: inf, cum: 4}}
	if q := estimateQuantile(b, 0.99); q != 0.5 {
		t.Fatalf("overflow p99 = %v, want 0.5", q)
	}
}

func TestSparkline(t *testing.T) {
	if s := sparkline([]float64{0, 0, 0}); s != "▁▁▁" {
		t.Fatalf("flat sparkline = %q", s)
	}
	s := sparkline([]float64{0, 1, 2, 4})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline length = %d", len([]rune(s)))
	}
	if []rune(s)[3] != '█' {
		t.Fatalf("max sample not rendered full: %q", s)
	}
}

// TestMonitorFrameAgainstLiveServer drives one full scrape → render cycle
// against a real in-process ctflsrv and checks the frame carries the RED
// table, SLO objectives, and the flight tail.
func TestMonitorFrameAgainstLiveServer(t *testing.T) {
	s := server.New()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("server close: %v", err)
		}
	}()
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Traffic: two OKs and one 409 rejection (pinned flight event).
	for _, path := range []string{"/healthz", "/healthz", "/v1/rules"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	m := newMonitor(ts.URL, 10)
	frame1, err := m.scrape(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	// A second scrape exercises the rate differencing path.
	frame, err := m.scrape(time.Now().Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"/healthz", "/v1/rules", // RED table rows
		"wal_availability", "availability", "score_staleness", // SLO rows
		"latency:/healthz", // per-route latency objective
		"flight:",          // tail header
		"rejected",         // the pinned 409 event
		"goroutines",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
	if frame1 == "" {
		t.Error("first frame empty")
	}
}

// TestMultiMonitorRingFrame drives the ring view against two live nodes
// plus one dead target: the frame must carry a rate column per node, the
// union of their routes, and a DOWN marker for the unreachable address —
// without the dead node failing the whole frame.
func TestMultiMonitorRingFrame(t *testing.T) {
	urls := make([]string, 2)
	for i := range urls {
		s := server.New()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := s.Close(ctx); err != nil {
				t.Errorf("server close: %v", err)
			}
		}()
		ts := httptest.NewServer(s)
		defer ts.Close()
		urls[i] = ts.URL
	}
	// Distinct traffic per node so the route union matters: node 0 serves
	// /healthz, node 1 serves /v1/rules.
	for i, path := range []string{"/healthz", "/v1/rules"} {
		resp, err := http.Get(urls[i] + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // reachable address, refused connection

	mm := newMultiMonitor([]string{urls[0], urls[1], dead.URL}, 5)
	if _, err := mm.scrape(time.Now()); err != nil {
		t.Fatal(err)
	}
	frame, err := mm.scrape(time.Now().Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"3 nodes",
		"n0 r/s", "n1 r/s", "n2 r/s", // one RED column per node
		"/healthz", "/v1/rules", // route union across nodes
		"DOWN", // the dead target
		"n0 flight:", "n1 flight:",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("ring frame missing %q:\n%s", want, frame)
		}
	}
}
