// Command ctflmon is a live terminal monitor for a running ctflsrv: a RED
// table per route (rate, errors, p99 latency), every SLO objective's
// multi-window burn rate with a sparkline history, and the flight
// recorder's recent tail events — the at-a-glance view an operator keeps
// open during an incident.
//
// Usage:
//
//	ctflmon [-addr http://localhost:8080] [-interval 2s] [-n 10] [-once]
//
// -addr accepts a comma-separated list of nodes; with more than one the
// monitor switches to the ring view — a node roster plus a RED table with
// one rate column per node — so a single instance watches a whole cluster.
//
// It needs only the server's public surface: GET /metrics (Prometheus
// text) and GET /v1/events (JSON). -once prints a single frame and exits
// (scriptable capture); otherwise the screen redraws every -interval.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

// scraper is one frame source: the single-node monitor or the ring view.
type scraper interface {
	scrape(now time.Time) (string, error)
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "ctflsrv base URL(s), comma-separated for a ring")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval")
	tailN := flag.Int("n", 10, "recent flight events to display")
	once := flag.Bool("once", false, "print one frame and exit")
	flag.Parse()

	var addrs []string
	for _, a := range strings.Split(*addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "ctflmon: -addr is empty")
		os.Exit(2)
	}
	var m scraper = newMonitor(addrs[0], *tailN)
	if len(addrs) > 1 {
		m = newMultiMonitor(addrs, *tailN)
	}
	for {
		frame, err := m.scrape(time.Now())
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctflmon: %v\n", err)
			if *once {
				os.Exit(1)
			}
		} else if *once {
			fmt.Print(frame)
			return
		} else {
			// Clear + home, then the frame: a cheap full-screen redraw.
			fmt.Print("\x1b[2J\x1b[H" + frame)
		}
		time.Sleep(*interval)
	}
}
