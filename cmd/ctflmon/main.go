// Command ctflmon is a live terminal monitor for a running ctflsrv: a RED
// table per route (rate, errors, p99 latency), every SLO objective's
// multi-window burn rate with a sparkline history, and the flight
// recorder's recent tail events — the at-a-glance view an operator keeps
// open during an incident.
//
// Usage:
//
//	ctflmon [-addr http://localhost:8080] [-interval 2s] [-n 10] [-once]
//
// It needs only the server's public surface: GET /metrics (Prometheus
// text) and GET /v1/events (JSON). -once prints a single frame and exits
// (scriptable capture); otherwise the screen redraws every -interval.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "ctflsrv base URL")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval")
	tailN := flag.Int("n", 10, "recent flight events to display")
	once := flag.Bool("once", false, "print one frame and exit")
	flag.Parse()

	m := newMonitor(*addr, *tailN)
	for {
		frame, err := m.scrape(time.Now())
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctflmon: %v\n", err)
			if *once {
				os.Exit(1)
			}
		} else if *once {
			fmt.Print(frame)
			return
		} else {
			// Clear + home, then the frame: a cheap full-screen redraw.
			fmt.Print("\x1b[2J\x1b[H" + frame)
		}
		time.Sleep(*interval)
	}
}
