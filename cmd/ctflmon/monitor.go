package main

// Scrape + render core of ctflmon, kept free of terminal control so the
// tests can drive one frame end to end against an httptest server.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// sample is one /metrics scrape: every sample line parsed into a flat
// name → value map (full name, labels included), stamped with scrape time.
type sample struct {
	at     time.Time
	values map[string]float64
}

// parseMetrics parses Prometheus text exposition into a flat map. Comment
// lines are skipped; unparseable lines are ignored rather than fatal (a
// monitor should degrade, not crash, on a new exposition quirk).
func parseMetrics(r io.Reader) map[string]float64 {
	out := make(map[string]float64)
	var b strings.Builder
	if _, err := io.Copy(&b, r); err != nil {
		return out
	}
	for _, line := range strings.Split(b.String(), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out
}

// splitMetricName separates a full sample name into its base and parsed
// label pairs: `a_bucket{route="/x",le="0.25"}` → ("a_bucket",
// {route:/x, le:0.25}).
func splitMetricName(full string) (string, map[string]string) {
	i := strings.IndexByte(full, '{')
	if i < 0 || !strings.HasSuffix(full, "}") {
		return full, nil
	}
	labels := make(map[string]string)
	body := full[i+1 : len(full)-1]
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			break
		}
		key := body[:eq]
		rest := body[eq+2:]
		end := strings.IndexByte(rest, '"')
		if end < 0 {
			break
		}
		labels[key] = rest[:end]
		body = rest[end+1:]
		body = strings.TrimPrefix(body, ",")
	}
	return full[:i], labels
}

// bucketPoint is one cumulative histogram bucket.
type bucketPoint struct {
	le  float64 // upper bound, +Inf allowed
	cum float64
}

// estimateQuantile linearly interpolates q within cumulative buckets,
// mirroring the server's own histogram quantile semantics. Returns 0 on an
// empty histogram; the +Inf bucket answers with the last finite bound.
func estimateQuantile(buckets []bucketPoint, q float64) float64 {
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	if len(buckets) == 0 {
		return 0
	}
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0
	}
	rank := q * total
	lower, prevCum := 0.0, 0.0
	for _, b := range buckets {
		if b.cum >= rank && b.cum > prevCum {
			if b.le == inf {
				return lower
			}
			frac := (rank - prevCum) / (b.cum - prevCum)
			return lower + frac*(b.le-lower)
		}
		if b.le != inf {
			lower = b.le
		}
		prevCum = b.cum
	}
	return lower
}

var inf = func() float64 { v, _ := strconv.ParseFloat("+Inf", 64); return v }()

// routeRow is one line of the RED table.
type routeRow struct {
	route    string
	requests float64
	rate     float64 // req/s since the previous sample
	errors   float64 // cumulative 5xx
	p99      float64 // seconds, estimated from buckets
}

// redTable derives per-route request/error/latency rows from a scrape,
// with rates differenced against the previous sample (nil prev → 0 rates).
func redTable(prev, cur *sample) []routeRow {
	byRoute := make(map[string]*routeRow)
	row := func(route string) *routeRow {
		r, ok := byRoute[route]
		if !ok {
			r = &routeRow{route: route}
			byRoute[route] = r
		}
		return r
	}
	buckets := make(map[string][]bucketPoint)
	for name, v := range cur.values {
		base, labels := splitMetricName(name)
		route := labels["route"]
		if route == "" {
			continue
		}
		switch base {
		case "ctfl_http_requests_total":
			r := row(route)
			r.requests = v
			if prev != nil {
				if dt := cur.at.Sub(prev.at).Seconds(); dt > 0 {
					if pv, ok := prev.values[name]; ok && v >= pv {
						r.rate = (v - pv) / dt
					}
				}
			}
		case "ctfl_http_errors_total":
			row(route).errors = v
		case "ctfl_http_request_seconds_bucket":
			le, err := strconv.ParseFloat(labels["le"], 64)
			if err != nil {
				continue
			}
			buckets[route] = append(buckets[route], bucketPoint{le: le, cum: v})
		}
	}
	for route, bs := range buckets {
		row(route).p99 = estimateQuantile(bs, 0.99)
	}
	rows := make([]routeRow, 0, len(byRoute))
	for _, r := range byRoute {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].route < rows[j].route })
	return rows
}

// sloRow is one objective's live burn state plus its sparkline history.
type sloRow struct {
	name     string
	fast     float64
	slow     float64
	breached bool
}

// sloRows extracts every objective's burn gauges from a scrape.
func sloRows(cur *sample) []sloRow {
	byName := make(map[string]*sloRow)
	row := func(name string) *sloRow {
		r, ok := byName[name]
		if !ok {
			r = &sloRow{name: name}
			byName[name] = r
		}
		return r
	}
	for name, v := range cur.values {
		base, labels := splitMetricName(name)
		slo := labels["slo"]
		if slo == "" {
			continue
		}
		switch base {
		case "ctfl_slo_burn_rate":
			switch labels["window"] {
			case "fast":
				row(slo).fast = v
			case "slow":
				row(slo).slow = v
			}
		case "ctfl_slo_breach":
			row(slo).breached = v != 0
		}
	}
	rows := make([]sloRow, 0, len(byName))
	for _, r := range byName {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	return rows
}

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// sparkline renders a history as block glyphs, scaled to the series max
// (all-zero history → a flat baseline).
func sparkline(hist []float64) string {
	maxV := 0.0
	for _, v := range hist {
		if v > maxV {
			maxV = v
		}
	}
	var b strings.Builder
	for _, v := range hist {
		idx := 0
		if maxV > 0 {
			idx = int(v / maxV * float64(len(sparkLevels)-1))
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// tailEvent is the subset of the server's /v1/events JSON the monitor
// displays.
type tailEvent struct {
	Seq        uint64 `json:"seq"`
	Unix       int64  `json:"unix"`
	Kind       string `json:"kind"`
	Outcome    string `json:"outcome"`
	Status     int32  `json:"status"`
	Route      string `json:"route"`
	Method     string `json:"method"`
	DurationNs int64  `json:"duration_ns"`
	Retries    int32  `json:"retries"`
	Faults     int32  `json:"faults"`
	Err        string `json:"err"`
}

type eventsPayload struct {
	Stats struct {
		Recorded uint64 `json:"recorded"`
		Retained int    `json:"retained"`
		Pinned   int    `json:"pinned"`
	} `json:"stats"`
	Events []tailEvent `json:"events"`
}

// monitor owns one target server's scrape state and burn history.
type monitor struct {
	base     string // server base URL, no trailing slash
	client   *http.Client
	tailN    int
	prev     *sample
	burnHist map[string][]float64 // objective → fast-burn history
	histCap  int
}

func newMonitor(base string, tailN int) *monitor {
	return &monitor{
		base:     strings.TrimRight(base, "/"),
		client:   &http.Client{Timeout: 10 * time.Second},
		tailN:    tailN,
		burnHist: make(map[string][]float64),
		histCap:  24,
	}
}

func (m *monitor) get(path string) (*http.Response, error) {
	resp, err := m.client.Get(m.base + path)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
	}
	return resp, nil
}

// scrapeSample pulls one /metrics snapshot; shared by the single-node and
// multi-node frames.
func (m *monitor) scrapeSample(now time.Time) (*sample, error) {
	resp, err := m.get("/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return &sample{at: now, values: parseMetrics(resp.Body)}, nil
}

// scrapeEvents pulls the flight recorder tail (n newest events plus stats).
func (m *monitor) scrapeEvents(n int) (eventsPayload, error) {
	var events eventsPayload
	resp, err := m.get(fmt.Sprintf("/v1/events?n=%d", n))
	if err != nil {
		return events, err
	}
	defer resp.Body.Close()
	return events, json.NewDecoder(resp.Body).Decode(&events)
}

// scrape pulls /metrics and /v1/events and renders one frame.
func (m *monitor) scrape(now time.Time) (string, error) {
	cur, err := m.scrapeSample(now)
	if err != nil {
		return "", err
	}
	events, err := m.scrapeEvents(m.tailN)
	if err != nil {
		return "", err
	}

	slos := sloRows(cur)
	for _, o := range slos {
		h := append(m.burnHist[o.name], o.fast)
		if len(h) > m.histCap {
			h = h[len(h)-m.histCap:]
		}
		m.burnHist[o.name] = h
	}
	frame := renderFrame(m.prev, cur, slos, m.burnHist, events)
	m.prev = cur
	return frame, nil
}

// renderFrame lays out one monitor frame: header, RED table, SLO burn
// rates with sparklines, and the recent flight-recorder tail.
func renderFrame(prev, cur *sample, slos []sloRow, burnHist map[string][]float64, events eventsPayload) string {
	var b strings.Builder
	degraded := cur.values["ctfl_server_degraded"] != 0
	state := "healthy"
	if degraded {
		state = "DEGRADED"
	}
	fmt.Fprintf(&b, "ctflsrv %s  uptime %s  goroutines %.0f  heap %s  [%s]\n\n",
		cur.at.Format("15:04:05"),
		(time.Duration(cur.values["ctfl_process_uptime_seconds"]) * time.Second).String(),
		cur.values["ctfl_process_goroutines"],
		fmtBytes(cur.values["ctfl_process_heap_alloc_bytes"]),
		state)

	fmt.Fprintf(&b, "%-22s %10s %8s %8s %9s\n", "ROUTE", "REQUESTS", "RATE/S", "5XX", "P99")
	for _, r := range redTable(prev, cur) {
		fmt.Fprintf(&b, "%-22s %10.0f %8.1f %8.0f %8.1fms\n",
			r.route, r.requests, r.rate, r.errors, r.p99*1000)
	}

	fmt.Fprintf(&b, "\n%-28s %8s %8s %-8s %s\n", "SLO", "FAST", "SLOW", "STATE", "BURN")
	for _, o := range slos {
		st := "ok"
		if o.breached {
			st = "BREACH"
		}
		fmt.Fprintf(&b, "%-28s %8.2f %8.2f %-8s %s\n",
			o.name, o.fast, o.slow, st, sparkline(burnHist[o.name]))
	}

	fmt.Fprintf(&b, "\nflight: %d recorded, %d retained, %d pinned\n",
		events.Stats.Recorded, events.Stats.Retained, events.Stats.Pinned)
	evs := events.Events
	for i := len(evs) - 1; i >= 0; i-- { // newest first
		ev := evs[i]
		detail := ev.Err
		if len(detail) > 48 {
			detail = detail[:48]
		}
		fmt.Fprintf(&b, "  #%-6d %-7s %-8s %3s %-22s %7.1fms %s\n",
			ev.Seq, ev.Kind, ev.Outcome, statusStr(ev.Status), ev.Route,
			float64(ev.DurationNs)/1e6, detail)
	}
	return b.String()
}

func statusStr(code int32) string {
	if code == 0 {
		return "-"
	}
	return strconv.Itoa(int(code))
}

func fmtBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}
