package main

// Multi-node mode: one ctflmon instance watching a whole ring. Each -addr
// target keeps its own monitor (rate differencing is per node), and the
// frame pivots the RED table so every route shows one rate column per node
// — the view that makes a hot shard or a dead node obvious at a glance.

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// multiMonitor owns one monitor per ring member.
type multiMonitor struct {
	nodes []*monitor
}

func newMultiMonitor(bases []string, tailN int) *multiMonitor {
	mm := &multiMonitor{}
	for _, b := range bases {
		mm.nodes = append(mm.nodes, newMonitor(b, tailN))
	}
	return mm
}

// nodeFrame is one node's contribution to a multi-node frame. A node that
// fails to scrape is rendered DOWN with empty columns rather than failing
// the whole frame: during an incident the monitor must keep showing the
// survivors.
type nodeFrame struct {
	prev, cur *sample
	events    eventsPayload
	err       error
}

// scrape pulls every node and renders one combined frame.
func (mm *multiMonitor) scrape(now time.Time) (string, error) {
	frames := make([]nodeFrame, len(mm.nodes))
	for i, m := range mm.nodes {
		nf := nodeFrame{prev: m.prev}
		nf.cur, nf.err = m.scrapeSample(now)
		if nf.err == nil {
			m.prev = nf.cur
			nf.events, _ = m.scrapeEvents(1)
		}
		frames[i] = nf
	}
	return renderMultiFrame(now, mm.nodes, frames), nil
}

// renderMultiFrame lays out the combined view: a node roster, the RED table
// with per-node rate columns, per-node SLO breach counts, and one flight
// stats line per node.
func renderMultiFrame(now time.Time, nodes []*monitor, frames []nodeFrame) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ctflsrv ring %s  %d nodes\n\n", now.Format("15:04:05"), len(nodes))

	// Roster: which URL is which column, and whether it is alive.
	for i, m := range nodes {
		nf := frames[i]
		if nf.err != nil {
			fmt.Fprintf(&b, "n%-2d %-28s DOWN: %v\n", i, m.base, nf.err)
			continue
		}
		state := "healthy"
		if nf.cur.values["ctfl_server_degraded"] != 0 {
			state = "DEGRADED"
		}
		fmt.Fprintf(&b, "n%-2d %-28s %-8s uptime %-8s heap %s\n",
			i, m.base, state,
			(time.Duration(nf.cur.values["ctfl_process_uptime_seconds"]) * time.Second).String(),
			fmtBytes(nf.cur.values["ctfl_process_heap_alloc_bytes"]))
	}

	// RED table, pivoted: rows are the union of routes across nodes, one
	// rate column per node, then ring-wide totals and the worst p99.
	perNode := make([]map[string]routeRow, len(frames))
	routeSet := make(map[string]bool)
	for i, nf := range frames {
		perNode[i] = make(map[string]routeRow)
		if nf.err != nil {
			continue
		}
		for _, r := range redTable(nf.prev, nf.cur) {
			perNode[i][r.route] = r
			routeSet[r.route] = true
		}
	}
	routes := make([]string, 0, len(routeSet))
	for r := range routeSet {
		routes = append(routes, r)
	}
	sort.Strings(routes)

	fmt.Fprintf(&b, "\n%-22s", "ROUTE")
	for i := range nodes {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("n%d r/s", i))
	}
	fmt.Fprintf(&b, " %10s %6s %9s\n", "REQUESTS", "5XX", "WORST P99")
	for _, route := range routes {
		fmt.Fprintf(&b, "%-22s", route)
		var requests, errors, worstP99 float64
		for i := range nodes {
			r, ok := perNode[i][route]
			if !ok {
				fmt.Fprintf(&b, " %8s", "-")
				continue
			}
			fmt.Fprintf(&b, " %8.1f", r.rate)
			requests += r.requests
			errors += r.errors
			if r.p99 > worstP99 {
				worstP99 = r.p99
			}
		}
		fmt.Fprintf(&b, " %10.0f %6.0f %8.1fms\n", requests, errors, worstP99*1000)
	}

	// SLOs: per node, just the breach roll-up — burn sparklines stay a
	// single-node view, the ring view only needs "who is on fire".
	fmt.Fprintf(&b, "\n%-6s %8s %s\n", "NODE", "SLOS", "BREACHED")
	for i, nf := range frames {
		if nf.err != nil {
			fmt.Fprintf(&b, "n%-5d %8s %s\n", i, "-", "-")
			continue
		}
		var breached []string
		slos := sloRows(nf.cur)
		for _, o := range slos {
			if o.breached {
				breached = append(breached, o.name)
			}
		}
		list := "none"
		if len(breached) > 0 {
			list = strings.Join(breached, " ")
		}
		fmt.Fprintf(&b, "n%-5d %8d %s\n", i, len(slos), list)
	}

	fmt.Fprintf(&b, "\n")
	for i, nf := range frames {
		if nf.err != nil {
			continue
		}
		fmt.Fprintf(&b, "n%d flight: %d recorded, %d retained, %d pinned\n",
			i, nf.events.Stats.Recorded, nf.events.Stats.Retained, nf.events.Stats.Pinned)
	}
	return b.String()
}
