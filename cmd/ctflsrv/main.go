// Command ctflsrv runs the federation's contribution-estimation service.
//
// Usage:
//
//	ctflsrv [-addr :8080]
//
// Lifecycle (see internal/server for payload formats):
//
//	POST /v1/encoder   publish the predicate encoding (JSON)
//	POST /v1/model     publish the trained rule-based model (binary)
//	POST /v1/uploads   register participant activation frames
//	POST /v1/trace     score a reserved test set (CSV) → JSON report
//	GET  /v1/rules     inspect the extracted rules
//	GET  /healthz      liveness and state summary
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("ctflsrv listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}
