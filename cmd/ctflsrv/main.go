// Command ctflsrv runs the federation's contribution-estimation service.
//
// Usage:
//
//	ctflsrv [-addr :8080] [-data-dir /var/lib/ctflsrv] [-workers 4]
//	        [-queue 64] [-job-timeout 2m] [-max-body 67108864]
//	        [-compact-bytes 8388608] [-no-sync] [-pprof] [-log-json]
//	        [-job-retries 3] [-degraded-threshold 3] [-probe-interval 1s]
//	        [-retry-after 1s] [-read-timeout 5m] [-write-timeout 10m]
//	        [-idle-timeout 2m] [-round-epsilon 0.001] [-round-inner-epsilon 0]
//	        [-round-perms 0] [-round-seed 1] [-round-workers 0]
//	        [-gate-threshold T] [-gate-warmup 2] [-gate-hysteresis 0.02]
//	        [-flight-size 1024] [-flight-tail 256] [-slo-interval 5s]
//	        [-slo-latency-bound 0.25]
//	        [-cluster-self URL] [-cluster-peers URL,URL,...]
//	        [-replica URL] [-leader URL] [-follow-interval 250ms]
//	        [-repl-lag-bound 2] [-repl-timeout 5s]
//
// Clustering: -cluster-peers places every federation on one ring member by
// consistent hash; requests for a federation this node does not own answer
// 421 with the owner's URL in X-CTFL-Shard (the server.Client follows the
// redirect automatically). -replica makes this node a leader that pushes
// every WAL segment to the named follower before acknowledging a write;
// -leader makes this node a follower that applies pushed segments, fences
// its own write routes with 503, probes the leader's /healthz every
// -follow-interval, and promotes itself when the replication_lag SLO burns
// (gauge above -repl-lag-bound on both burn windows).
//
// With -data-dir set, every accepted lifecycle mutation is write-ahead
// logged and the full federation state is recovered on restart; without it
// the service is in-memory. SIGINT/SIGTERM trigger a graceful drain:
// in-flight HTTP requests and queued trace jobs finish, a final state
// snapshot is written, and only then does the process exit.
//
// Fault tolerance: failed trace jobs are retried up to -job-retries times
// with exponential backoff (panicking jobs are quarantined instead, never
// retried). After -degraded-threshold consecutive WAL append failures the
// service enters degraded mode — reads and traces keep working, writes
// answer 503 with a Retry-After of -retry-after — and probes the WAL at
// most every -probe-interval until an append succeeds, then recovers
// automatically.
//
// Lifecycle (see internal/server for payload formats):
//
//	POST /v1/encoder       publish the predicate encoding (JSON)
//	POST /v1/model         publish the trained rule-based model (binary)
//	POST /v1/uploads       register participant activation frames
//	POST /v1/predict       score feature rows (binary CTFL frame or JSON)
//	POST /v1/rounds        register the streaming eval set (CSV) or push one
//	                       round-update frame (binary CTFL frame)
//	GET  /v1/scores        live per-participant contribution scores
//	                       (?round=N&wait=D long-polls)
//	POST /v1/trace         submit a test set (CSV) → async job (?wait= to block)
//	GET  /v1/trace/{id}    poll a trace job
//	GET  /v1/rules         inspect the extracted rules
//	GET  /v1/stats         observability counters + telemetry snapshot
//	GET  /v1/traces/recent recent request trace trees
//	GET  /v1/events        flight-recorder wide events (JSON or binary)
//	GET  /v1/debug/bundle  one-shot incident capture
//	GET  /v1/version       build identity
//	GET  /metrics          Prometheus text exposition
//	GET  /healthz          liveness and state summary
//
// -pprof mounts net/http/pprof under /debug/pprof/ on the same listener.
// -addr accepts port 0; the actual bound address is logged as
// "ctflsrv listening on host:port", which harnesses parse.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/jobs"
	"repro/internal/rounds"
	"repro/internal/server"
)

// splitPeers turns the comma-separated -cluster-peers value into member
// URLs, dropping empty segments so trailing commas are harmless.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	addr := flag.String("addr", ":8080", "listen address (port 0 picks a free port)")
	dataDir := flag.String("data-dir", "", "persistence directory (empty = in-memory)")
	workers := flag.Int("workers", 4, "trace worker pool size")
	queue := flag.Int("queue", 64, "max queued trace jobs before 503")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "per-trace-job timeout")
	maxBody := flag.Int64("max-body", 64<<20, "max POST body bytes before 413")
	compactBytes := flag.Int64("compact-bytes", 8<<20, "WAL size triggering snapshot compaction")
	noSync := flag.Bool("no-sync", false, "skip per-append WAL fsync (faster, less durable)")
	jobRetries := flag.Int("job-retries", 3, "max attempts per trace job (1 = no retries; panics always quarantine)")
	degradedThreshold := flag.Int("degraded-threshold", 3, "consecutive WAL failures before degraded mode")
	probeInterval := flag.Duration("probe-interval", time.Second, "min interval between degraded-mode recovery probes")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 503 write rejections")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to drain on shutdown")
	readTimeout := flag.Duration("read-timeout", 5*time.Minute, "max time to read a request incl. body (0 = unlimited)")
	writeTimeout := flag.Duration("write-timeout", 10*time.Minute, "max time to write a response; must exceed the longest ?wait= long-poll (0 = unlimited)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time per connection (0 = unlimited)")
	roundEpsilon := flag.Float64("round-epsilon", 0, "between-round truncation threshold for streaming valuation (0 = default 1e-3, negative disables)")
	roundInnerEpsilon := flag.Float64("round-inner-epsilon", 0, "within-round truncation threshold (0 = same as -round-epsilon, negative disables)")
	roundPerms := flag.Int("round-perms", 0, "permutation samples per streamed round (0 = engine default)")
	roundSeed := flag.Int64("round-seed", 1, "seed for the streaming valuation sampler")
	roundWorkers := flag.Int("round-workers", 0, "coalition-evaluation workers per streamed round (0 = engine default)")
	gateThreshold := flag.Float64("gate-threshold", math.NaN(), "contribution-gate score threshold (ContAvg defense; unset disables gating)")
	gateWarmup := flag.Int("gate-warmup", 2, "applied rounds before gate decisions begin")
	gateHysteresis := flag.Float64("gate-hysteresis", 0.02, "readmission margin above -gate-threshold")
	flightSize := flag.Int("flight-size", 1024, "flight recorder routine-ring capacity (events)")
	flightTail := flag.Int("flight-tail", 256, "flight recorder pinned-tail capacity (interesting events)")
	sloInterval := flag.Duration("slo-interval", 5*time.Second, "background SLO burn-rate evaluation cadence (negative disables)")
	sloLatencyBound := flag.Float64("slo-latency-bound", 0.25, "per-route latency SLO threshold in seconds")
	clusterSelf := flag.String("cluster-self", "", "this node's public base URL within -cluster-peers")
	clusterPeers := flag.String("cluster-peers", "", "comma-separated base URLs of every ring member (requires -cluster-self)")
	replicaURL := flag.String("replica", "", "follower base URL to replicate the WAL to (leader role; requires -data-dir)")
	leaderURL := flag.String("leader", "", "leader base URL to follow (follower role: writes fenced until promotion)")
	followInterval := flag.Duration("follow-interval", 250*time.Millisecond, "follower leader-health probe cadence")
	replLagBound := flag.Float64("repl-lag-bound", 2, "replication-lag SLO threshold in seconds before failover burn starts")
	replTimeout := flag.Duration("repl-timeout", 5*time.Second, "timeout per replication push / leader health probe")
	withPprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON instead of text")
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	// The gate threshold has no inert sentinel inside its domain — scores
	// start at 0 and go negative, so 0 is a meaningful threshold. NaN (the
	// flag default) is the "disabled" marker.
	var gate *rounds.GateConfig
	if !math.IsNaN(*gateThreshold) {
		gate = &rounds.GateConfig{
			Threshold:  *gateThreshold,
			Warmup:     *gateWarmup,
			Hysteresis: *gateHysteresis,
		}
	}

	svc, err := server.NewWithOptions(server.Options{
		DataDir:           *dataDir,
		Workers:           *workers,
		QueueDepth:        *queue,
		JobTimeout:        *jobTimeout,
		MaxBodyBytes:      *maxBody,
		CompactBytes:      *compactBytes,
		NoSync:            *noSync,
		Logger:            logger,
		JobRetry:          jobs.RetryPolicy{MaxAttempts: *jobRetries},
		DegradedThreshold: *degradedThreshold,
		ProbeInterval:     *probeInterval,
		RetryAfter:        *retryAfter,
		RoundEpsilon:      *roundEpsilon,
		RoundInnerEpsilon: *roundInnerEpsilon,
		RoundPermutations: *roundPerms,
		RoundSeed:         *roundSeed,
		RoundWorkers:      *roundWorkers,
		RoundGate:         gate,
		FlightSize:        *flightSize,
		FlightTailSize:    *flightTail,
		SLOInterval:       *sloInterval,
		SLOLatencyBound:   *sloLatencyBound,
		ClusterSelf:       *clusterSelf,
		ClusterPeers:      splitPeers(*clusterPeers),
		ReplicaURL:        *replicaURL,
		LeaderURL:         *leaderURL,
		FollowInterval:    *followInterval,
		ReplLagBound:      *replLagBound,
		ReplTimeout:       *replTimeout,
	})
	if err != nil {
		logger.Error("ctflsrv: startup failed", "err", err)
		os.Exit(1)
	}

	var handlerMux http.Handler = svc
	if *withPprof {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", svc)
		handlerMux = mux
	}

	// Listen before serving so -addr :0 resolves to a concrete port the
	// startup log can announce (smoke harnesses parse this line).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("ctflsrv: listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}

	// Slow-client protection: a peer that stalls mid-request or never reads
	// its response is cut off instead of pinning a connection (and its
	// handler goroutine) forever. The write timeout is generous because
	// /v1/trace?wait= long-polls inside the response window.
	srv := &http.Server{
		Handler:           handlerMux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("ctflsrv listening on "+ln.Addr().String(),
			"addr", ln.Addr().String(), "data_dir", *dataDir, "pprof", *withPprof)
		errc <- srv.Serve(ln)
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("ctflsrv: serve failed", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop() // restore default signal behaviour: a second ^C kills hard
		logger.Info("ctflsrv draining", "max", drainTimeout.String())
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("ctflsrv: http shutdown", "err", err)
		}
		// Drain queued trace jobs and write the final snapshot.
		if err := svc.Close(shutdownCtx); err != nil {
			logger.Warn("ctflsrv: close", "err", err)
		} else {
			logger.Info("ctflsrv: drained cleanly")
		}
	}
}
