// Command ctflsrv runs the federation's contribution-estimation service.
//
// Usage:
//
//	ctflsrv [-addr :8080] [-data-dir /var/lib/ctflsrv] [-workers 4]
//	        [-queue 64] [-job-timeout 2m] [-max-body 67108864]
//	        [-compact-bytes 8388608] [-no-sync]
//
// With -data-dir set, every accepted lifecycle mutation is write-ahead
// logged and the full federation state is recovered on restart; without it
// the service is in-memory. SIGINT/SIGTERM trigger a graceful drain:
// in-flight HTTP requests and queued trace jobs finish, a final state
// snapshot is written, and only then does the process exit.
//
// Lifecycle (see internal/server for payload formats):
//
//	POST /v1/encoder       publish the predicate encoding (JSON)
//	POST /v1/model         publish the trained rule-based model (binary)
//	POST /v1/uploads       register participant activation frames
//	POST /v1/trace         submit a test set (CSV) → async job (?wait= to block)
//	GET  /v1/trace/{id}    poll a trace job
//	GET  /v1/rules         inspect the extracted rules
//	GET  /v1/stats         observability counters
//	GET  /healthz          liveness and state summary
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data-dir", "", "persistence directory (empty = in-memory)")
	workers := flag.Int("workers", 4, "trace worker pool size")
	queue := flag.Int("queue", 64, "max queued trace jobs before 503")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "per-trace-job timeout")
	maxBody := flag.Int64("max-body", 64<<20, "max POST body bytes before 413")
	compactBytes := flag.Int64("compact-bytes", 8<<20, "WAL size triggering snapshot compaction")
	noSync := flag.Bool("no-sync", false, "skip per-append WAL fsync (faster, less durable)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to drain on shutdown")
	flag.Parse()

	svc, err := server.NewWithOptions(server.Options{
		DataDir:      *dataDir,
		Workers:      *workers,
		QueueDepth:   *queue,
		JobTimeout:   *jobTimeout,
		MaxBodyBytes: *maxBody,
		CompactBytes: *compactBytes,
		NoSync:       *noSync,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if *dataDir != "" {
			log.Printf("ctflsrv listening on %s (data dir %s)", *addr, *dataDir)
		} else {
			log.Printf("ctflsrv listening on %s (in-memory)", *addr)
		}
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		stop() // restore default signal behaviour: a second ^C kills hard
		log.Printf("ctflsrv draining (max %s)...", *drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("ctflsrv: http shutdown: %v", err)
		}
		// Drain queued trace jobs and write the final snapshot.
		if err := svc.Close(shutdownCtx); err != nil {
			log.Printf("ctflsrv: close: %v", err)
		} else {
			log.Printf("ctflsrv: drained cleanly")
		}
	}
}
