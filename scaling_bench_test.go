package repro

// Scaling benchmarks backing the complexity claims of Section III-C: CTFL's
// tracing cost grows linearly in training and test set sizes (and is
// embarrassingly parallel), while the coalition-retraining baselines grow
// with the number of *coalitions* — exponential in participants for exact
// schemes, Θ(n² log n) trainings for the sampled ones. These benches sweep
// each axis in isolation.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/rules"
	"repro/internal/stats"
	"repro/internal/valuation"
)

// tracingFixture builds a trained model once per benchmark and reuses it.
func tracingFixture(b *testing.B, trainRows, testRows int) (*rules.Set, []*fl.Participant, *dataset.Table) {
	b.Helper()
	r := stats.NewRNG(1)
	tab := dataset.Adult(r, trainRows+testRows)
	idx := r.Perm(tab.Len())
	train := tab.Subset(idx[:trainRows])
	test := tab.Subset(idx[trainRows:])
	enc, err := dataset.NewEncoder(tab.Schema, 10, r)
	if err != nil {
		b.Fatal(err)
	}
	xs, ys := enc.EncodeTable(train)
	m, err := nn.New(enc.Width(), nn.Config{
		Hidden: []int{64}, Epochs: 10, Grafting: true, Seed: 2,
		L1Logic: 2e-4, L2Head: 1e-3,
	})
	if err != nil {
		b.Fatal(err)
	}
	m.Train(xs, ys)
	rs := rules.Extract(m, enc)
	parts := fl.PartitionSkewSample(train, 8, 2.0, r)
	return rs, parts, test
}

// BenchmarkScalingTrainingRows sweeps |D_N| at fixed |D_te|: tracing is a
// linear scan over training activation vectors per unique test pattern.
func BenchmarkScalingTrainingRows(b *testing.B) {
	for _, rows := range []int{500, 1000, 2000, 4000} {
		b.Run(fmt.Sprintf("train=%d", rows), func(b *testing.B) {
			rs, parts, test := tracingFixture(b, rows, 300)
			tracer := core.NewTracer(rs, parts, core.Config{TauW: 0.9})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tracer.Trace(test)
			}
		})
	}
}

// BenchmarkScalingTestRows sweeps |D_te| at fixed |D_N|: pattern dedup makes
// the marginal cost of an extra test row with a seen pattern near zero.
func BenchmarkScalingTestRows(b *testing.B) {
	for _, rows := range []int{100, 300, 900} {
		b.Run(fmt.Sprintf("test=%d", rows), func(b *testing.B) {
			rs, parts, test := tracingFixture(b, 1500, rows)
			tracer := core.NewTracer(rs, parts, core.Config{TauW: 0.9})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tracer.Trace(test)
			}
		})
	}
}

// BenchmarkScalingParticipantsShapley shows the baseline pain: distinct
// coalition trainings needed by the sampled Shapley at the paper's budget,
// as a reported metric, versus CTFL's constant single training. The utility
// function here is a stub counter (no actual training), isolating the
// combinatorial growth itself.
func BenchmarkScalingParticipantsShapley(b *testing.B) {
	for _, n := range []int{4, 6, 8, 10, 12} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var distinct float64
			for i := 0; i < b.N; i++ {
				seen := map[uint64]bool{}
				v := func(mask uint64) (float64, error) {
					seen[mask] = true
					return float64(mask%97) / 97, nil
				}
				_, err := valuation.SampledShapley(n, v, valuation.ShapleyConfig{
					Rand: stats.NewRNG(int64(i)),
				})
				if err != nil {
					b.Fatal(err)
				}
				distinct = float64(len(seen))
			}
			b.ReportMetric(distinct, "distinct-coalitions")
			b.ReportMetric(1, "ctfl-trainings")
		})
	}
}
