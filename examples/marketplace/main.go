// Marketplace: a revenue-sharing data federation built on CTFL.
//
// The paper motivates contribution estimation as the basis of an incentive
// mechanism: a federation earns revenue from its deployed model and must
// split it among data providers fairly, quickly, and with an audit trail.
// This example runs a three-epoch marketplace on the adult benchmark:
//
//	epoch 1  four founding providers split the pool by CTFL-micro shares
//	epoch 2  a new provider joins with complementary high-income data —
//	         its share is computed by the SAME single-pass pipeline,
//	         no retraining of 2^n coalitions
//	epoch 3  one provider starts replicating data to game its payout;
//	         the macro scheme holds its share flat and the audit flags the
//	         divergence between micro and macro as a replication signal
//
// Run with: go run ./examples/marketplace
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/incentive"
	"repro/internal/nn"
	"repro/internal/rules"
	"repro/internal/stats"
)

const revenuePool = 10000.0 // currency units per epoch

func main() {
	r := stats.NewRNG(11)
	tab := dataset.Adult(r, 3000)
	train, test := tab.Split(r, 0.2)

	enc, err := dataset.NewEncoder(tab.Schema, 10, r)
	if err != nil {
		log.Fatal(err)
	}

	// Founding providers: skew-label split of 80% of the training data; the
	// held-back 20% becomes the joiner's complementary shard in epoch 2.
	idx := r.Perm(train.Len())
	founderRows := train.Subset(idx[:4*train.Len()/5])
	joinerRows := train.Subset(idx[4*train.Len()/5:])
	parts := fl.PartitionSkewLabel(founderRows, 4, 0.8, r)

	// The ledger settles every epoch with a floor-guaranteed payout rule,
	// tracks decayed reputations, and raises replication/flip flags from the
	// micro-vs-macro divergence and loss ratios.
	ledger := incentive.NewLedger(5)
	ledger.Rule = incentive.Floored{MinShare: 0.02}

	fmt.Println("=== epoch 1: founding providers ===")
	settle(ledger, enc, parts, test)

	fmt.Println("\n=== epoch 2: provider E joins with new data ===")
	joiner := &fl.Participant{ID: 4, Name: "E", Data: joinerRows}
	parts = append(parts, joiner)
	settle(ledger, enc, parts, test)

	fmt.Println("\n=== epoch 3: provider B replicates 80% of its data ===")
	cheat := fl.Replicate(parts[1], 0.8, r)
	parts = fl.ReplaceParticipant(parts, cheat)
	settle(ledger, enc, parts, test)

	fmt.Println("\ncumulative payouts and reputation after 3 epochs:")
	cum, rep := ledger.Cumulative(), ledger.Reputation()
	names := []string{"A", "B", "C", "D", "E"}
	for i := range names {
		fmt.Printf("  %-4s paid %9.2f  reputation %.3f\n", names[i], cum[i], rep[i])
	}
}

// settle trains the epoch's global model, traces contributions, and settles
// the revenue pool through the ledger (absent providers score zero).
func settle(ledger *incentive.Ledger, enc *dataset.Encoder, parts []*fl.Participant, test *dataset.Table) {
	trainer := fl.NewTrainer(enc, fl.TrainConfig{
		Rounds: 4, LocalEpochs: 12, Parallel: true,
		Model: nn.Config{Hidden: []int{64}, Grafting: true, Seed: 9, L1Logic: 2e-4, L2Head: 1e-3, KeepBest: true},
	})
	model, err := trainer.Train(parts)
	if err != nil {
		log.Fatal(err)
	}
	rs := rules.Extract(model, enc)
	res := core.NewTracer(rs, parts, core.Config{TauW: 0.85, Delta: 3}).Trace(test)

	// Pad score vectors to the ledger's fixed width (absent providers = 0).
	pad := func(xs []float64) []float64 {
		out := make([]float64, 5)
		copy(out, xs)
		return out
	}
	sus := res.Suspicion(0.5)
	s, err := ledger.Settle(incentive.Epoch{
		Micro:     pad(res.MicroScores()),
		Macro:     pad(res.MacroScores()),
		LossRatio: pad(sus.Ratio),
		Revenue:   revenuePool,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model accuracy %.3f — settled %.0f units (%s)\n",
		res.Accuracy(), revenuePool, ledger.Rule.Name())
	micro, macro := pad(res.MicroScores()), pad(res.MacroScores())
	stats.Normalize(micro)
	stats.Normalize(macro)
	fmt.Printf("  %-4s %10s %9s %9s\n", "who", "payout", "micro", "macro")
	for i, p := range parts {
		fmt.Printf("  %-4s %10.2f %9.3f %9.3f\n", p.Name, s.Payouts[i], micro[i], macro[i])
	}
	for _, f := range s.Flags {
		if f.Participant < len(parts) {
			fmt.Printf("  FLAG %s: %s\n", parts[f.Participant].Name, f.Reason)
		}
	}
}
