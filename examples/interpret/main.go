// Interpret: explain WHY each participant earned its contribution score.
//
// Reproduces the paper's Fig. 7 case study: a three-participant tic-tac-toe
// federation where CTFL summarizes each client's beneficial and harmful
// characteristics through its most frequently activated classification
// rules, reports the useless-data ratio, and derives data-collection
// guidance for test scenarios the training data fails to cover.
//
// Run with: go run ./examples/interpret
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	w := experiments.Workload{
		Dataset:      "tic-tac-toe",
		Participants: 3,
		SkewLabel:    true,
		Alpha:        0.6,
		Seed:         5,
		Rounds:       15,
		LocalEpochs:  20,
	}
	setup, err := experiments.Materialize(w)
	if err != nil {
		log.Fatal(err)
	}
	res, err := experiments.RunInterpret(setup, 3)
	if err != nil {
		log.Fatal(err)
	}
	res.Render(os.Stdout)

	fmt.Println()
	fmt.Println("reading the report:")
	fmt.Println("  - each rule is a conjunction/disjunction over board cells;")
	fmt.Println("    '+' rules support 'x wins', '-' rules support 'o side';")
	fmt.Println("  - a participant's beneficial rules show WHICH patterns its")
	fmt.Println("    data taught the global model (e.g. a diagonal of x);")
	fmt.Println("  - harmful rules show where its data misled the model;")
	fmt.Println("  - the useless-data ratio counts rows never matched by any")
	fmt.Println("    test instance (candidates for pruning or re-labeling).")

	// The same Result object answers "who should collect what": patterns of
	// misclassified test data without training coverage.
	guidance := res.Guidance
	if len(guidance) == 0 {
		fmt.Println("\nno under-covered test patterns — training data covers the test scenarios")
	} else {
		fmt.Println("\nthe federation should solicit data matching these rules:")
		for _, g := range guidance {
			fmt.Printf("  [weight %.3f] %s\n", g.Credit, g.Expr)
		}
	}
}
