// Quickstart: estimate participant contributions on tic-tac-toe in one pass.
//
// This is the minimal CTFL pipeline:
//  1. generate a dataset and reserve a federation test set,
//  2. partition the training data across participants,
//  3. train ONE global rule-based model with FedAvg,
//  4. trace every test instance back to the training data that learned its
//     activated rules, and
//  5. allocate micro (proportional) and macro (replication-robust) scores.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/rules"
	"repro/internal/stats"
)

func main() {
	// 1. Data: the exact UCI tic-tac-toe endgame set, regenerated locally.
	tab := dataset.TicTacToe()
	r := stats.NewRNG(42)
	train, test := tab.Split(r, 0.2)
	fmt.Printf("dataset: %s — %d train / %d test rows\n", tab.Schema.Name, train.Len(), test.Len())

	// 2. Federation: four participants with Dirichlet-skewed label mixes.
	parts := fl.PartitionSkewLabel(train, 4, 0.8, r)
	for _, p := range parts {
		d := p.LabelDistribution()
		fmt.Printf("  participant %s: %4d rows (%.0f%% positive)\n", p.Name, p.Size(), d[1]*100)
	}

	// 3. One global model: encoder fixed by the federation, logical network
	//    trained with FedAvg + gradient grafting.
	enc, err := dataset.NewEncoder(tab.Schema, 10, r)
	if err != nil {
		log.Fatal(err)
	}
	trainer := fl.NewTrainer(enc, fl.TrainConfig{
		Rounds: 8, LocalEpochs: 15, Parallel: true,
		Model: nn.Config{Hidden: []int{64}, Grafting: true, Seed: 7, L1Logic: 2e-4, L2Head: 1e-3, KeepBest: true},
	})
	model, err := trainer.Train(parts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("global model test accuracy: %.3f\n\n", trainer.Evaluate(model, test))

	// 4. Trace: match test instances to related training data via rules.
	rs := rules.Extract(model, enc)
	tracer := core.NewTracer(rs, parts, core.Config{TauW: 0.9, Delta: 2})
	res := tracer.Trace(test)

	// 5. Allocate.
	micro, macro := res.MicroScores(), res.MacroScores()
	fmt.Println("contribution scores (single training + tracing pass):")
	fmt.Printf("  %-12s %8s %8s\n", "participant", "micro", "macro")
	for i, p := range parts {
		fmt.Printf("  %-12s %8.4f %8.4f\n", p.Name, micro[i], macro[i])
	}
	fmt.Printf("\ngroup rationality: sum(micro)=%.4f = accuracy %.4f − coverage gap %.4f\n",
		stats.Sum(micro), res.Accuracy(), res.CoverageGap())
}
