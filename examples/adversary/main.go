// Adversary: how CTFL's allocation schemes react to strategic and malicious
// participants.
//
// Three attacks from the paper's robustness study (Section IV-A / Fig. 6)
// are staged against a bank-marketing federation. The global model is
// trained once on the honest data; each attack then modifies one
// participant's uploaded rule-activation vectors and re-runs ONLY the
// tracing/allocation phase. This isolates the allocation-level robustness
// properties (the full retraining protocol is exercised by `ctfl run fig6`):
//
//   - data replication — duplicated rows inflate the proportional (micro)
//     score but leave the macro score exactly unchanged;
//   - low-quality data — randomly re-labeled rows stop matching test
//     instances of their true class, so the micro score drops;
//   - label flipping — flipped rows lose their gain AND absorb blame on
//     misclassified test data, so the suspicion report singles the
//     attacker out.
//
// Run with: go run ./examples/adversary
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/rules"
	"repro/internal/stats"
)

func main() {
	r := stats.NewRNG(7)
	tab := dataset.Bank(r, 3000)
	train, test := tab.Split(r, 0.2)
	// Near-uniform shards: every participant competes on most test
	// instances, so score movements reflect data quality, not shard size.
	parts := fl.PartitionSkewSample(train, 5, 8.0, r)

	enc, err := dataset.NewEncoder(tab.Schema, 10, r)
	if err != nil {
		log.Fatal(err)
	}
	trainer := fl.NewTrainer(enc, fl.TrainConfig{
		Rounds: 5, LocalEpochs: 12, Parallel: true,
		Model: nn.Config{Hidden: []int{64}, Grafting: true, Seed: 3, L1Logic: 2e-4, L2Head: 1e-3, KeepBest: true},
	})
	model, err := trainer.Train(parts)
	if err != nil {
		log.Fatal(err)
	}
	rs := rules.Extract(model, enc)
	fmt.Printf("global model accuracy: %.3f\n\n", trainer.Evaluate(model, test))

	cfg := core.Config{TauW: 0.85, Delta: 2}
	trace := func(ps []*fl.Participant) *core.Result {
		return core.NewTracer(rs, ps, cfg).Trace(test)
	}

	base := trace(parts)
	microBase, macroBase := base.MicroScores(), base.MacroScores()
	ratioBase := base.Suspicion(0.5).Ratio
	fmt.Println("baseline scores (honest data):")
	printScores(parts, microBase, macroBase)

	victim := stats.ArgsortDesc(microBase)[0]
	name := parts[victim].Name

	fmt.Printf("\n=== attack 1: %s replicates 100%% of its data ===\n", name)
	repl := trace(fl.ReplaceParticipant(parts, fl.Replicate(parts[victim], 1.0, r)))
	mR, MR := repl.MicroScores(), repl.MacroScores()
	fmt.Printf("micro: %.4f -> %.4f (%+.1f%%)  — Eq. 5 is size-proportional, so it inflates\n",
		microBase[victim], mR[victim], pct(microBase[victim], mR[victim]))
	fmt.Printf("macro: %.4f -> %.4f (%+.1f%%)  — Eq. 6 caps credit at the δ threshold\n",
		macroBase[victim], MR[victim], pct(macroBase[victim], MR[victim]))

	fmt.Printf("\n=== attack 2: %s injects 50%% low-quality labels ===\n", name)
	lq := trace(fl.ReplaceParticipant(parts, fl.InjectLowQuality(parts[victim], 0.5, r)))
	mL := lq.MicroScores()
	fmt.Printf("micro: %.4f -> %.4f (%+.1f%%)  — re-labeled rows stop matching their true class\n",
		microBase[victim], mL[victim], pct(microBase[victim], mL[victim]))

	fmt.Printf("\n=== attack 3: %s flips 50%% of its labels ===\n", name)
	// Label flipping is a poisoning attack: its signature appears when the
	// global model is trained WITH the flipped data and learns wrong-side
	// rules from it. Retrain for this attack, then trace the poisoned model.
	poisonedParts := fl.ReplaceParticipant(parts, fl.FlipLabels(parts[victim], 0.5, r))
	poisonedModel, err := trainer.Train(poisonedParts)
	if err != nil {
		log.Fatal(err)
	}
	prs := rules.Extract(poisonedModel, enc)
	flipped := core.NewTracer(prs, poisonedParts, cfg).Trace(test)
	mF := flipped.MicroScores()
	fmt.Printf("micro: %.4f -> %.4f (%+.1f%%)  — flipped rows cannot fulfil 1[y_hat = y_te]\n",
		microBase[victim], mF[victim], pct(microBase[victim], mF[victim]))
	rep := flipped.Suspicion(0.5)
	uselessBase := base.UselessRatio()
	useless := flipped.UselessRatio()
	fmt.Println("audit per participant (vs honest baseline):")
	fmt.Printf("  %-12s %18s %22s\n", "", "loss ratio", "useless-data ratio")
	for i, p := range parts {
		mark := ""
		if useless[i] > uselessBase[i]+0.15 {
			mark = "  <-- untraceable data surged: inspect for label flipping"
		}
		fmt.Printf("  %-12s %8.2f (was %.2f) %12.2f (was %.2f)%s\n",
			p.Name, rep.Ratio[i], ratioBase[i], useless[i], uselessBase[i], mark)
	}
}

func printScores(parts []*fl.Participant, micro, macro []float64) {
	fmt.Printf("  %-12s %8s %8s\n", "participant", "micro", "macro")
	for i, p := range parts {
		fmt.Printf("  %-12s %8.4f %8.4f\n", p.Name, micro[i], macro[i])
	}
}

func pct(before, after float64) float64 {
	if before == 0 {
		return 0
	}
	return (after - before) / before * 100
}
