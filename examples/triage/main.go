// Triage: CTFL beyond binary classification.
//
// The paper restricts its presentation to binary tasks and notes the
// extension "to multi-class with minor changes". This example exercises
// that extension (internal/multiclass): a 3-class incident-triage task is
// decomposed one-vs-rest into three binary logical networks, prediction
// takes the argmax rule vote, and each correctly classified test ticket is
// traced inside the predicted class's rule space back to the participants
// whose data taught those rules.
//
// Run with: go run ./examples/triage
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/multiclass"
	"repro/internal/nn"
	"repro/internal/stats"
)

func main() {
	r := stats.NewRNG(5)
	tab := multiclass.Triage(r, 2000)
	train, test := tab.Split(r, 0.2)

	// Three participants, each biased toward one urgency class — the
	// multi-class analogue of the paper's skew-label setting.
	parts := multiclass.PartitionByClassAffinity(train, 3, 0.8, r)
	for _, p := range parts {
		var counts [3]int
		for _, in := range p.Data.Instances {
			counts[in.Class]++
		}
		fmt.Printf("participant %s: %4d tickets (low %d / medium %d / high %d)\n",
			p.Name, p.Data.Len(), counts[0], counts[1], counts[2])
	}

	enc, err := dataset.NewEncoder(tab.Schema, 8, r)
	if err != nil {
		log.Fatal(err)
	}
	union := &multiclass.Table{Schema: tab.Schema, ClassNames: tab.ClassNames}
	for _, p := range parts {
		union.Instances = append(union.Instances, p.Data.Instances...)
	}
	model, err := multiclass.Train(union, enc, nn.Config{
		Hidden: []int{48}, Epochs: 30, Grafting: true, Seed: 7,
		L1Logic: 2e-4, L2Head: 1e-3, KeepBest: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n3-class argmax accuracy: %.3f\n", model.Accuracy(test))

	est := multiclass.NewEstimator(model, parts, core.Config{TauW: 0.8})
	res := est.Trace(test)
	micro := res.MicroScores()
	macro := res.MacroScores(2)
	fmt.Println("\ncontribution scores (one-vs-rest tracing):")
	fmt.Printf("  %-12s %8s %8s\n", "participant", "micro", "macro")
	for i, p := range parts {
		fmt.Printf("  %-12s %8.4f %8.4f\n", p.Name, micro[i], macro[i])
	}

	// Per-class interpretability: show the strongest rule of each class's
	// binary model.
	fmt.Println("\nstrongest rule per urgency class:")
	for k, name := range tab.ClassNames {
		rs := model.Rules(k)
		best := -1.0
		expr := "(no live rules)"
		for _, ru := range rs.Rules {
			if ru.Positive && ru.Weight > best {
				best = ru.Weight
				expr = ru.Expr
			}
		}
		fmt.Printf("  %-7s %s\n", name+":", expr)
	}
}
