// Lifecycle: contribution estimation inside a messy, real-world federation.
//
// Production federations are not the clean simulations of Section VI:
// clients drop offline, stragglers miss aggregation deadlines, and the
// global model's quality wobbles round to round. This example runs the
// internal/fedsim lifecycle simulator over a bank-marketing federation with
// 25% dropout and 15% straggler rates, prints the audit log and accuracy
// trajectory, and then runs CTFL on the surviving global model — showing
// that contribution scores remain consistent with each client's actual
// participation.
//
// Run with: go run ./examples/lifecycle
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fedsim"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/rules"
	"repro/internal/stats"
)

func main() {
	r := stats.NewRNG(13)
	tab := dataset.Bank(r, 2500)
	train, test := tab.StratifiedSplit(r, 0.2)
	parts := fl.PartitionSkewSample(train, 5, 4.0, r)

	enc, err := dataset.NewEncoder(tab.Schema, 10, r)
	if err != nil {
		log.Fatal(err)
	}
	res, err := fedsim.Run(enc, parts, test, fedsim.Config{
		Rounds: 8, LocalEpochs: 10,
		DropoutProb: 0.25, StragglerProb: 0.15, Seed: 7,
		Model: nn.Config{Hidden: []int{64}, Grafting: true, Seed: 2,
			L1Logic: 2e-4, L2Head: 1e-3, KeepBest: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("federation audit log:")
	fmt.Print(res.EventLog())

	fmt.Println("\naccuracy trajectory:")
	traj := res.AccuracyTrajectory()
	for i, a := range traj {
		fmt.Printf("  round %d: %.3f\n", i, a)
	}

	// Score contributions on the final model.
	rs := rules.Extract(res.Model, enc)
	trace := core.NewTracer(rs, parts, core.Config{TauW: 0.85, Delta: 2}).Trace(test)
	micro := trace.MicroScores()
	fmt.Printf("\nfinal model accuracy %.3f — contribution vs participation:\n", trace.Accuracy())
	fmt.Printf("  %-12s %8s %14s\n", "participant", "micro", "rounds-joined")
	for i, p := range parts {
		fmt.Printf("  %-12s %8.4f %14d\n", p.Name, micro[i], res.Participation[i])
	}
}
