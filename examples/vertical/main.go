// Vertical: contribution estimation when parties hold feature COLUMNS.
//
// The paper's future-work section names vertical federated learning as the
// next target for CTFL. This example runs the internal/vertical extension
// on tic-tac-toe: three parties own the left, middle and right board
// columns respectively; the traced credit answers "whose columns power the
// winning-line rules?" The middle column sits on 4 of the 8 winning lines
// (vs 3 for each side column), so its owner should earn at least a
// comparable share.
//
// Run with: go run ./examples/vertical
package main

import (
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rules"
	"repro/internal/stats"
	"repro/internal/vertical"
)

func main() {
	tab := dataset.TicTacToe()
	r := stats.NewRNG(6)
	train, test := tab.Split(r, 0.2)

	enc, err := dataset.NewEncoder(tab.Schema, 4, r)
	if err != nil {
		log.Fatal(err)
	}
	xs, ys := enc.EncodeTable(train)
	model, err := nn.New(enc.Width(), nn.Config{
		Hidden: []int{64}, Epochs: 50, Grafting: true, Seed: 3,
		L1Logic: 2e-4, L2Head: 1e-3, KeepBest: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	model.Train(xs, ys)
	rs := rules.Extract(model, enc)

	part, err := vertical.NewPartition(tab.Schema, []*vertical.Party{
		{ID: 0, Name: "left-column", Features: []int{0, 3, 6}},
		{ID: 1, Name: "middle-column", Features: []int{1, 4, 7}},
		{ID: 2, Name: "right-column", Features: []int{2, 5, 8}},
	})
	if err != nil {
		log.Fatal(err)
	}
	est, err := vertical.NewEstimator(rs, part)
	if err != nil {
		log.Fatal(err)
	}
	res := est.Trace(test)

	fmt.Printf("model accuracy: %.3f (%d of %d test boards uncovered by rules)\n\n",
		res.Accuracy(), res.Uncovered, res.TestSize)
	fmt.Println("per-party credit (share of correctly classified boards")
	fmt.Println("attributed through rule-predicate ownership):")
	scores := res.Scores()
	for i, p := range part.Parties {
		fmt.Printf("  %-14s credit %.4f   blame %.4f\n", p.Name, scores[i], res.Blame[i])
	}
	fmt.Printf("\ngroup rationality: credit sum %.4f = accuracy %.4f − uncovered share %.4f\n",
		stats.Sum(scores), res.Accuracy(), float64(res.Uncovered)/float64(res.TestSize))
}
