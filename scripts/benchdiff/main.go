// Command benchdiff is the check.sh performance-regression gate: it re-runs
// the pinned hot-path benchmarks (upload ingest, binary predict, flight
// record), compares each ns/op against the newest BENCH_*.json that records
// that benchmark, and fails when any pinned path regresses by more than the
// threshold. BENCH files are written deliberately (a PR that changes the
// performance story re-baselines by committing a new one), so the gate
// catches the accidental regressions — an alloc snuck into an ingest loop —
// without flagging intentional trade-offs.
//
// Usage: benchdiff [-threshold 0.20] [-dir .] [-benchtime 1s]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// pins are the guarded hot paths. Each entry names one benchmark exactly as
// BENCH_*.json records it, the package that owns it, and the -bench
// expression that runs it (and only it).
var pins = []struct {
	name string // name in BENCH_*.json / bench output (no -procs suffix)
	pkg  string
	expr string
}{
	{"BenchmarkServerUploadIngest", "./internal/server/", "^BenchmarkServerUploadIngest$"},
	{"BenchmarkServerPredict/codec=binary", "./internal/server/", "^BenchmarkServerPredict$/^codec=binary$"},
	{"BenchmarkFlightRecord", "./internal/flight/", "^BenchmarkFlightRecord$"},
}

type benchRecord struct {
	Name string  `json:"name"`
	NsOp float64 `json:"ns_op"`
}

type benchFile struct {
	Benchmarks []benchRecord `json:"benchmarks"`
}

// baselines scans BENCH_*.json newest-first (by the numeric suffix) and
// returns, for every pinned benchmark, the most recent recorded ns/op.
func baselines(dir string) (map[string]float64, map[string]string, error) {
	files, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, nil, err
	}
	num := regexp.MustCompile(`BENCH_(\d+)\.json$`)
	sort.Slice(files, func(i, j int) bool { // newest (highest number) first
		mi, mj := num.FindStringSubmatch(files[i]), num.FindStringSubmatch(files[j])
		if mi == nil || mj == nil {
			return files[i] > files[j]
		}
		ni, _ := strconv.Atoi(mi[1])
		nj, _ := strconv.Atoi(mj[1])
		return ni > nj
	})
	base := make(map[string]float64)
	src := make(map[string]string)
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			return nil, nil, err
		}
		var bf benchFile
		if err := json.Unmarshal(raw, &bf); err != nil {
			continue // not every BENCH file is a benchmark table (e.g. load reports)
		}
		for _, b := range bf.Benchmarks {
			if _, seen := base[b.Name]; !seen && b.NsOp > 0 {
				base[b.Name] = b.NsOp
				src[b.Name] = filepath.Base(f)
			}
		}
	}
	return base, src, nil
}

// nsOpLine matches one benchmark result line and captures name and ns/op.
var nsOpLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// runPin executes one pinned benchmark count times and returns the minimum
// measured ns/op: on shared CI hardware the minimum is the least-noise
// estimator (interference only ever slows a run down), so the gate trips on
// real regressions, not on a noisy neighbour.
func runPin(pkg, expr, benchtime string, count int) (float64, error) {
	cmd := exec.Command("go", "test", "-run=NONE", "-bench="+expr,
		"-benchtime="+benchtime, "-count="+strconv.Itoa(count), pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return 0, fmt.Errorf("go test -bench %s %s: %v\n%s", expr, pkg, err, out)
	}
	best := 0.0
	for _, line := range strings.Split(string(out), "\n") {
		if m := nsOpLine.FindStringSubmatch(strings.TrimSpace(line)); m != nil {
			v, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				return 0, err
			}
			if best == 0 || v < best {
				best = v
			}
		}
	}
	if best == 0 {
		return 0, fmt.Errorf("no ns/op line in output of %s %s:\n%s", expr, pkg, out)
	}
	return best, nil
}

func main() {
	threshold := flag.Float64("threshold", 0.20, "fail when ns/op regresses by more than this fraction")
	dir := flag.String("dir", ".", "repository root holding BENCH_*.json baselines")
	benchtime := flag.String("benchtime", "1s", "-benchtime per pinned benchmark")
	count := flag.Int("count", 3, "runs per benchmark; the minimum ns/op is compared")
	flag.Parse()

	base, src, err := baselines(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}

	failed := false
	for _, p := range pins {
		want, ok := base[p.name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchdiff: no BENCH_*.json baseline records %s\n", p.name)
			os.Exit(1)
		}
		got, err := runPin(p.pkg, p.expr, *benchtime, *count)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
		delta := (got - want) / want
		verdict := "ok"
		if delta > *threshold {
			verdict = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-40s %12.1f ns/op  baseline %12.1f (%s)  %+6.1f%%  %s\n",
			p.name, got, want, src[p.name], delta*100, verdict)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: pinned hot path regressed more than %.0f%%\n", *threshold*100)
		os.Exit(1)
	}
}
