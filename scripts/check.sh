#!/usr/bin/env bash
# Repository health check: static analysis, full build, race-enabled tests
# on the hot-path packages (plus the full suite), and a short benchmark
# smoke run proving the benchmarks still execute. CI and pre-commit both
# call this; README "Development" documents it.
set -euo pipefail
cd "$(dirname "$0")/.."

# `check.sh chaos` runs only the fault-injection soak: the full stack under
# -race with deterministic faults at every site (WAL, compaction, snapshot
# rename, job errors + panics, HTTP handlers, client requests), asserting
# the traced factors stay bit-identical to a fault-free run.
if [[ "${1:-}" == "chaos" ]]; then
    echo "== chaos soak (-race, deterministic fault injection, fixed seed)"
    go test -race -run 'TestChaosSoak' -count=1 -v ./internal/server/
    exit 0
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race (hot paths: nn, core, bitset, protocol)"
go test -race ./internal/nn/... ./internal/core/... ./internal/bitset/... ./internal/protocol/...

echo "== go test -race (service layer: store, jobs, server, telemetry, flight)"
go test -race ./internal/store/... ./internal/jobs/... ./internal/server/... ./internal/telemetry/... ./internal/flight/...

echo "== go test -race (valuation engine + round stream + FL trainer, parallel paths exercised)"
go test -race ./internal/valuation/... ./internal/rounds/... ./internal/fl/...
go test -race -short ./internal/experiments/...

echo "== go test -race (adversarial robustness: attack matrix + ContAvg defense)"
go test -race ./internal/attack/...

echo "== attack-matrix smoke (one attack x one scheme through both valuation paths)"
go test -run=TestMatrixAcrossWorkers -count=1 ./internal/attack/

echo "== go test ./... (full suite)"
go test ./...

echo "== zero-alloc pins (training hot loop; disabled fault injector; cached utility)"
go test -run=TestTrainInnerLoopZeroAlloc -count=1 -v ./internal/nn/ | grep -E 'PASS|FAIL|allocates'
go test -run=TestDisabledInjectorZeroAlloc -count=1 -v ./internal/faults/ | grep -E 'PASS|FAIL|allocates'
go test -run=TestUtilityCacheHitZeroAlloc -count=1 -v ./internal/valuation/ | grep -E 'PASS|FAIL|allocates'

echo "== zero-alloc pins (wire-protocol ingest + predict hot paths)"
go test -run=TestValidateUploadFrameZeroAlloc -count=1 -v ./internal/protocol/ | grep -E 'PASS|FAIL|allocates'
go test -run=TestValidateRoundUpdateFrameZeroAlloc -count=1 -v ./internal/protocol/ | grep -E 'PASS|FAIL|allocates'
go test -run=TestBinarizedScoreBatchZeroAlloc -count=1 -v ./internal/nn/ | grep -E 'PASS|FAIL|allocates'

echo "== zero-alloc pin (flight recorder steady state)"
go test -run=TestRecordSteadyStateZeroAlloc -count=1 -v ./internal/flight/ | grep -E 'PASS|FAIL|allocates'

echo "== fuzz smoke (wire-protocol decoders, 3s each)"
for tgt in FuzzReadUpload FuzzParseFrame FuzzPredictRequest FuzzTraceResult FuzzRoundUpdate FuzzScoresSnapshot FuzzFlightEvents FuzzWALSegment; do
    go test -run=NONE -fuzz="^${tgt}\$" -fuzztime=3s ./internal/protocol/ | tail -1
done

echo "== bench smoke (1 iteration per hot-path benchmark)"
go test -run=NONE -bench='BenchmarkTraceIndexed|BenchmarkTrainEpochs' -benchtime=1x \
    ./internal/core/ ./internal/nn/
go test -run=NONE -bench='BenchmarkOracleBatch|BenchmarkSampledShapleyParallel' -benchtime=1x \
    ./internal/valuation/
go test -run=NONE -bench='BenchmarkTraceResult|BenchmarkUploadIngest' -benchtime=1x \
    ./internal/protocol/
go test -run=NONE -bench='BenchmarkRoundIngest|BenchmarkIncrementalScores' -benchtime=1x \
    ./internal/rounds/
go test -run=NONE -bench='BenchmarkFlightRecord' -benchtime=1x \
    ./internal/flight/

echo "== benchdiff (pinned hot paths vs newest BENCH_*.json, >20% ns/op regression fails)"
go run ./scripts/benchdiff

echo "== observability smoke (boot ctflsrv, scrape /metrics, graceful drain)"
tmpbin="$(mktemp -d)"
trap 'rm -rf "$tmpbin"' EXIT
go build -o "$tmpbin/ctflsrv" ./cmd/ctflsrv
go run ./scripts/metricsmoke -bin "$tmpbin/ctflsrv"

echo "OK: all checks passed"
