// Command metricsmoke is the check.sh observability smoke test: it boots a
// ctflsrv binary on an ephemeral port, scrapes GET /metrics, verifies every
// required metric family is exposed, checks /v1/traces/recent records the
// scrape itself, and shuts the server down gracefully via SIGTERM.
//
// Usage: metricsmoke -bin ./path/to/ctflsrv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"
)

// requiredFamilies is the metric catalog contract: one representative name
// per instrumented subsystem (HTTP routes, job engine, durable store,
// tracer, training, and the resilience layer).
var requiredFamilies = []string{
	"ctfl_http_requests_total",
	"ctfl_http_request_seconds",
	"ctfl_http_in_flight",
	"ctfl_jobs_submitted_total",
	"ctfl_jobs_queue_depth",
	"ctfl_jobs_wait_seconds",
	"ctfl_jobs_retries_total",
	"ctfl_jobs_quarantined_total",
	"ctfl_store_append_seconds",
	"ctfl_store_wal_bytes",
	"ctfl_tracer_queries_total",
	"ctfl_tracer_trace_seconds",
	"ctfl_train_epochs_total",
	"ctfl_train_epoch_seconds",
	"ctfl_server_degraded",
	"ctfl_rounds_ingested_total",
	"ctfl_rounds_skipped_total",
	"ctfl_rounds_gated_total",
	"ctfl_rounds_score_staleness_seconds",
	"ctfl_rounds_score_drift",
	"ctfl_rounds_sampling_variance",
	"ctfl_slo_burn_rate",
	"ctfl_slo_breach",
	"ctfl_flight_events_total",
	"ctfl_flight_pinned_total",
	"ctfl_process_goroutines",
	"ctfl_process_uptime_seconds",
	"ctfl_wal_attempts_total",
	"ctfl_http_errors_total",
}

func main() {
	bin := flag.String("bin", "", "path to the ctflsrv binary")
	timeout := flag.Duration("timeout", 20*time.Second, "overall smoke deadline")
	flag.Parse()
	if *bin == "" {
		fatalf("metricsmoke: -bin is required")
	}

	cmd := exec.Command(*bin, "-addr", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		fatalf("metricsmoke: %v", err)
	}
	if err := cmd.Start(); err != nil {
		fatalf("metricsmoke: starting %s: %v", *bin, err)
	}
	defer cmd.Process.Kill() // no-op after a clean wait

	addr, logTail, err := awaitListening(stderr, *timeout)
	if err != nil {
		fatalf("metricsmoke: %v\n--- server log ---\n%s", err, logTail)
	}
	fmt.Printf("metricsmoke: server up at %s\n", addr)
	go io.Copy(io.Discard, stderr) // keep the pipe drained

	base := "http://" + addr
	body := get(base + "/healthz")
	if !strings.Contains(body, `"ok":true`) {
		fatalf("metricsmoke: /healthz not ok: %s", body)
	}

	metrics := get(base + "/metrics")
	var missing []string
	for _, name := range requiredFamilies {
		if !strings.Contains(metrics, name) {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		fatalf("metricsmoke: /metrics missing families: %s", strings.Join(missing, ", "))
	}
	fmt.Printf("metricsmoke: /metrics exposes all %d required families\n", len(requiredFamilies))

	traces := get(base + "/v1/traces/recent")
	if !strings.Contains(traces, "http /healthz") && !strings.Contains(traces, "http /metrics") {
		fatalf("metricsmoke: /v1/traces/recent recorded no request spans: %s", traces)
	}
	fmt.Println("metricsmoke: /v1/traces/recent records request spans")

	events := get(base + "/v1/events")
	if !strings.Contains(events, `"route":"/healthz"`) {
		fatalf("metricsmoke: /v1/events recorded no request events: %s", events)
	}
	fmt.Println("metricsmoke: /v1/events records flight events")

	version := get(base + "/v1/version")
	if !strings.Contains(version, `"go_version"`) {
		fatalf("metricsmoke: /v1/version lacks build identity: %s", version)
	}
	bundle := get(base + "/v1/debug/bundle")
	if !strings.Contains(bundle, `"slo"`) || !strings.Contains(bundle, `"events"`) {
		fatalf("metricsmoke: /v1/debug/bundle incomplete")
	}
	fmt.Println("metricsmoke: /v1/version and /v1/debug/bundle answer")

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		fatalf("metricsmoke: signalling server: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			fatalf("metricsmoke: server exited uncleanly: %v", err)
		}
	case <-time.After(*timeout):
		fatalf("metricsmoke: server did not drain within %s", *timeout)
	}
	fmt.Println("metricsmoke: OK")
}

// awaitListening scans the server's log for the startup line and extracts
// the bound address from its addr= field.
func awaitListening(r io.Reader, timeout time.Duration) (addr, tail string, err error) {
	type result struct{ addr, tail string }
	found := make(chan result, 1)
	go func() {
		var lines []string
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			line := sc.Text()
			lines = append(lines, line)
			if !strings.Contains(line, "ctflsrv listening on") {
				continue
			}
			for _, f := range strings.Fields(line) {
				if a, ok := strings.CutPrefix(f, "addr="); ok {
					found <- result{addr: a, tail: strings.Join(lines, "\n")}
					return
				}
			}
		}
		found <- result{tail: strings.Join(lines, "\n")}
	}()
	select {
	case res := <-found:
		if res.addr == "" {
			return "", res.tail, fmt.Errorf("startup line with addr= never appeared")
		}
		return res.addr, res.tail, nil
	case <-time.After(timeout):
		return "", "", fmt.Errorf("no startup line within %s", timeout)
	}
}

func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		fatalf("metricsmoke: GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("metricsmoke: GET %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		fatalf("metricsmoke: GET %s: status %d: %s", url, resp.StatusCode, data)
	}
	return string(data)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
